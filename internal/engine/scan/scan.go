// Package scan is the shared chunked scan kernel the engine sims execute
// their document walks on. One kernel replaces the four private worker
// loops the sims used to carry: parallel engines call Filter or Map,
// engines whose real counterpart is single-threaded call Stream, and all
// three share the same batch planning, per-batch cancellation and obs
// accounting.
//
// Parallel kernels distribute work through an atomic cursor over small
// batches instead of one fixed chunk per worker: under skew (one expensive
// document) a fixed chunk stalls its worker while the others drain, whereas
// cursor batches rebalance automatically. Each worker keeps its results in
// private runs tagged with the batch start index, and the final merge sorts
// runs by start, so Filter output is in document order regardless of which
// worker claimed which batch.
//
// The package is inside the determinism lint scope: it never reads the
// clock, so its trace events carry no Duration.
package scan

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/joda-explore/betze/internal/obs"
)

// DefaultBatch is the cursor claim size when Options.Batch is unset. Small
// batches keep workers balanced under skew while still amortising the
// atomic increment; cancellation is checked once per claim, so the batch
// size also bounds cancellation latency.
const DefaultBatch = 64

// Options configures one scan pass.
type Options struct {
	// Workers is the goroutine count for the parallel kernels (Filter,
	// Map). Values below 1 run single-threaded; Stream ignores it.
	Workers int
	// Batch is the item count of one cursor claim. Values below 1 use
	// DefaultBatch.
	Batch int
	// Engine labels the pass's trace events.
	Engine string
}

// plan clamps the configuration against an n-item input: workers never
// exceed n (a 3-document scan on a 4-thread engine runs 3 workers, not 1),
// and the batch shrinks to ceil(n/workers) so every worker gets a claim on
// small inputs.
func plan(o Options, n int) (workers, batch int) {
	workers = o.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1 // n == 0: one worker observes the empty input
	}
	batch = o.Batch
	if batch < 1 {
		batch = DefaultBatch
	}
	if ceil := (n + workers - 1) / workers; ceil > 0 && batch > ceil {
		batch = ceil
	}
	return workers, batch
}

// run is one worker's kept items from one claimed batch, tagged with the
// batch start index so the merge can restore document order.
type run[T any] struct {
	start int
	items []T
}

// cursorLoop is the shared worker body of the parallel kernels: claim a
// batch through the cursor, check cancellation, walk it. walk returns the
// index of the first failing item, or end on success.
type cursorLoop struct {
	n       int
	batch   int
	cursor  atomic.Int64
	batches atomic.Int64
	walked  atomic.Int64
	stop    atomic.Bool

	mu      sync.Mutex
	errAt   int
	firstEr error
}

// fail records err at item index at, keeping the lowest-index error so the
// reported failure is deterministic under any worker interleaving.
func (c *cursorLoop) fail(at int, err error) {
	c.mu.Lock()
	if c.firstEr == nil || at < c.errAt {
		c.errAt, c.firstEr = at, err
	}
	c.mu.Unlock()
	c.stop.Store(true)
}

func (c *cursorLoop) work(ctx context.Context, walk func(start, end int) int) {
	for !c.stop.Load() {
		start := int(c.cursor.Add(int64(c.batch))) - c.batch
		if start >= c.n {
			return
		}
		if err := ctx.Err(); err != nil {
			c.fail(start, err)
			return
		}
		c.batches.Add(1)
		end := start + c.batch
		if end > c.n {
			end = c.n
		}
		stopped := walk(start, end)
		c.walked.Add(int64(stopped - start))
		if stopped < end {
			return // walk recorded its failure through fail
		}
	}
}

// Filter scans items with workers goroutines and returns the items keep
// accepted, in document order. keep may be called from multiple goroutines
// concurrently; an error (or context cancellation) aborts the scan and the
// lowest-index error is returned.
func Filter[T any](ctx context.Context, o Options, items []T, keep func(i int, item T) (bool, error)) ([]T, error) {
	workers, batch := plan(o, len(items))
	c := &cursorLoop{n: len(items), batch: batch}
	runs := make([][]run[T], workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.work(ctx, func(start, end int) int {
				var kept []T
				for i := start; i < end; i++ {
					ok, err := keep(i, items[i])
					if err != nil {
						c.fail(i, err)
						return i
					}
					if ok {
						kept = append(kept, items[i])
					}
				}
				if len(kept) > 0 {
					runs[w] = append(runs[w], run[T]{start: start, items: kept})
				}
				return end
			})
		}(w)
	}
	wg.Wait()
	observe(ctx, o, obs.KindParallel, workers, c.walked.Load(), c.batches.Load(), c.firstEr)
	if c.firstEr != nil {
		return nil, c.firstEr
	}
	return mergeRuns(runs), nil
}

// mergeRuns flattens per-worker runs back into document order.
func mergeRuns[T any](perWorker [][]run[T]) []T {
	var all []run[T]
	total := 0
	for _, rs := range perWorker {
		for _, r := range rs {
			total += len(r.items)
		}
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].start < all[j].start })
	out := make([]T, 0, total)
	for _, r := range all {
		out = append(out, r.items...)
	}
	return out
}

// FilterShards is Filter at shard granularity: the unit of work handed to a
// worker is one whole shard, evaluated by a single eval call into a
// per-worker reusable keep buffer — one indirect call per shard instead of
// one per document. shard returns shard i's items plus a skip verdict
// (typically a zone-map prune proof); skipped shards are never evaluated
// but their item counts are summed into the returned skipped total. eval
// receives a stable worker index in [0, workers) so callers can pin
// per-worker state (e.g. a query.Evaluator) without locking; its keep
// buffer is valid only for the duration of the call. Kept items are
// returned in document order. Cancellation is checked once per claimed
// shard, so a cancel lands mid-scan at shard granularity.
func FilterShards[T any](ctx context.Context, o Options, ns int,
	shard func(i int) (items []T, skip bool),
	eval func(worker int, items []T, keep []bool) (int, error),
) ([]T, int64, error) {
	workers, _ := plan(o, ns)
	c := &cursorLoop{n: ns, batch: 1}
	runs := make([][]run[T], workers)
	var items, scanned, skippedShards, skippedItems atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var keep []bool
			c.work(ctx, func(start, end int) int {
				for i := start; i < end; i++ {
					docs, skip := shard(i)
					if skip {
						skippedShards.Add(1)
						skippedItems.Add(int64(len(docs)))
						continue
					}
					scanned.Add(1)
					items.Add(int64(len(docs)))
					if cap(keep) < len(docs) {
						keep = make([]bool, len(docs))
					}
					kb := keep[:len(docs)]
					n, err := eval(w, docs, kb)
					if err != nil {
						c.fail(i, err)
						return i
					}
					if n > 0 {
						kept := make([]T, 0, n)
						for j := range docs {
							if kb[j] {
								kept = append(kept, docs[j])
							}
						}
						runs[w] = append(runs[w], run[T]{start: i, items: kept})
					}
				}
				return end
			})
		}(w)
	}
	wg.Wait()
	observeShards(ctx, o, obs.KindParallel, workers, items.Load(), c.batches.Load(), scanned.Load(), skippedShards.Load(), c.firstEr)
	if c.firstEr != nil {
		return nil, 0, c.firstEr
	}
	return mergeRuns(runs), skippedItems.Load(), nil
}

// StreamShards is the sequential shard walk for the engines whose modelled
// system is single-threaded: shard i is either skipped (skip true — a
// zone-map prune proof; body is never called for it) or walked by body,
// which returns the item count it consumed. Cancellation is checked once
// per shard. StreamShards returns the number of shards skipped; callers
// track skipped item counts themselves, since only they know a skipped
// shard's size without opening it.
func StreamShards(ctx context.Context, o Options, ns int,
	skip func(i int) bool,
	body func(i int) (int64, error),
) (skippedShards int64, err error) {
	var items, scanned, skipped int64
	defer func() {
		observeShards(ctx, o, obs.KindSequential, 1, items, scanned+skipped, scanned, skipped, err)
	}()
	for i := 0; i < ns; i++ {
		if err = ctx.Err(); err != nil {
			return skipped, err
		}
		if skip(i) {
			skipped++
			continue
		}
		scanned++
		n, berr := body(i)
		items += n
		if berr != nil {
			err = berr
			return skipped, err
		}
	}
	return skipped, nil
}

// Map scans items with workers goroutines, producing one output per input
// at the same index. fn may be called from multiple goroutines
// concurrently; an error aborts the scan and the partial output is
// discarded.
func Map[T, R any](ctx context.Context, o Options, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	workers, batch := plan(o, len(items))
	c := &cursorLoop{n: len(items), batch: batch}
	out := make([]R, len(items))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.work(ctx, func(start, end int) int {
				for i := start; i < end; i++ {
					r, err := fn(i, items[i])
					if err != nil {
						c.fail(i, err)
						return i
					}
					out[i] = r
				}
				return end
			})
		}()
	}
	wg.Wait()
	observe(ctx, o, obs.KindParallel, workers, c.walked.Load(), c.batches.Load(), c.firstEr)
	if c.firstEr != nil {
		return nil, c.firstEr
	}
	return out, nil
}

// Stream runs a sequential scan for the engines whose modelled system is
// single-threaded. A negative n scans an unbounded input (a decoder stream
// whose length is unknown upfront). step reports whether item i was
// consumed and the scan should continue; returning false stops without
// counting that call (end of input, result limits). Cancellation is checked
// once per batch, like the parallel kernels. Stream returns the number of
// items consumed.
func Stream(ctx context.Context, o Options, n int, step func(i int) (bool, error)) (done int, err error) {
	_, batch := plan(Options{Batch: o.Batch, Engine: o.Engine}, n)
	var batches int64
	defer func() { observe(ctx, o, obs.KindSequential, 1, int64(done), batches, err) }()
	for n < 0 || done < n {
		if cerr := ctx.Err(); cerr != nil {
			return done, cerr
		}
		batches++
		end := done + batch
		if n >= 0 && end > n {
			end = n
		}
		for done < end {
			ok, serr := step(done)
			if serr != nil {
				return done, serr
			}
			if !ok {
				return done, nil
			}
			done++
		}
	}
	return done, nil
}

// observe reports one finished pass into the scope attached to ctx: the
// scan.* counters plus one scan trace event. A cancelled pass also bumps
// the cancel counter. No Duration is recorded — this package never reads
// the clock.
func observe(ctx context.Context, o Options, kind string, workers int, items, batches int64, err error) {
	sc := obs.From(ctx)
	if !sc.Enabled() {
		return
	}
	sc.Counter(obs.MScanItems).Add(items)
	sc.Counter(obs.MScanBatches).Add(batches)
	sc.Counter(obs.MScanWorkers).Add(int64(workers))
	sc.Record(scanEvent(o, kind, workers, items, 0, err, sc))
}

// observeShards is observe for the shard kernels: the same scan.* counters
// plus the shard accounting — scanned and skipped shard counters and the
// Skipped field on the trace event.
func observeShards(ctx context.Context, o Options, kind string, workers int, items, batches, shardsScanned, shardsSkipped int64, err error) {
	sc := obs.From(ctx)
	if !sc.Enabled() {
		return
	}
	sc.Counter(obs.MScanItems).Add(items)
	sc.Counter(obs.MScanBatches).Add(batches)
	sc.Counter(obs.MScanWorkers).Add(int64(workers))
	sc.Counter(obs.MScanShardsScanned).Add(shardsScanned)
	sc.Counter(obs.MScanShardsSkipped).Add(shardsSkipped)
	sc.Record(scanEvent(o, kind, workers, items, shardsSkipped, err, sc))
}

// scanEvent assembles the scan trace event shared by both observers, bumping
// the cancel counter for cancelled passes.
func scanEvent(o Options, kind string, workers int, items, skipped int64, err error, sc obs.Scope) obs.Event {
	ev := obs.Event{
		Type:    obs.EvScan,
		Engine:  o.Engine,
		Kind:    kind,
		Scanned: items,
		Skipped: skipped,
		Workers: workers,
	}
	if err != nil {
		ev.Err = err.Error()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			sc.Counter(obs.MScanCancels).Inc()
		}
	}
	return ev
}
