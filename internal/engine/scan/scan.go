// Package scan is the shared chunked scan kernel the engine sims execute
// their document walks on. One kernel replaces the four private worker
// loops the sims used to carry: parallel engines call Filter or Map,
// engines whose real counterpart is single-threaded call Stream, and all
// three share the same batch planning, per-batch cancellation and obs
// accounting.
//
// Parallel kernels distribute work through an atomic cursor over small
// batches instead of one fixed chunk per worker: under skew (one expensive
// document) a fixed chunk stalls its worker while the others drain, whereas
// cursor batches rebalance automatically. Each worker keeps its results in
// private runs tagged with the batch start index, and the final merge sorts
// runs by start, so Filter output is in document order regardless of which
// worker claimed which batch.
//
// The package is inside the determinism lint scope: it never reads the
// clock, so its trace events carry no Duration.
package scan

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/joda-explore/betze/internal/obs"
)

// DefaultBatch is the cursor claim size when Options.Batch is unset. Small
// batches keep workers balanced under skew while still amortising the
// atomic increment; cancellation is checked once per claim, so the batch
// size also bounds cancellation latency.
const DefaultBatch = 64

// Options configures one scan pass.
type Options struct {
	// Workers is the goroutine count for the parallel kernels (Filter,
	// Map). Values below 1 run single-threaded; Stream ignores it.
	Workers int
	// Batch is the item count of one cursor claim. Values below 1 use
	// DefaultBatch.
	Batch int
	// Engine labels the pass's trace events.
	Engine string
}

// plan clamps the configuration against an n-item input: workers never
// exceed n (a 3-document scan on a 4-thread engine runs 3 workers, not 1),
// and the batch shrinks to ceil(n/workers) so every worker gets a claim on
// small inputs.
func plan(o Options, n int) (workers, batch int) {
	workers = o.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1 // n == 0: one worker observes the empty input
	}
	batch = o.Batch
	if batch < 1 {
		batch = DefaultBatch
	}
	if ceil := (n + workers - 1) / workers; ceil > 0 && batch > ceil {
		batch = ceil
	}
	return workers, batch
}

// run is one worker's kept items from one claimed batch, tagged with the
// batch start index so the merge can restore document order.
type run[T any] struct {
	start int
	items []T
}

// cursorLoop is the shared worker body of the parallel kernels: claim a
// batch through the cursor, check cancellation, walk it. walk returns the
// index of the first failing item, or end on success.
type cursorLoop struct {
	n       int
	batch   int
	cursor  atomic.Int64
	batches atomic.Int64
	walked  atomic.Int64
	stop    atomic.Bool

	mu      sync.Mutex
	errAt   int
	firstEr error
}

// fail records err at item index at, keeping the lowest-index error so the
// reported failure is deterministic under any worker interleaving.
func (c *cursorLoop) fail(at int, err error) {
	c.mu.Lock()
	if c.firstEr == nil || at < c.errAt {
		c.errAt, c.firstEr = at, err
	}
	c.mu.Unlock()
	c.stop.Store(true)
}

func (c *cursorLoop) work(ctx context.Context, walk func(start, end int) int) {
	for !c.stop.Load() {
		start := int(c.cursor.Add(int64(c.batch))) - c.batch
		if start >= c.n {
			return
		}
		if err := ctx.Err(); err != nil {
			c.fail(start, err)
			return
		}
		c.batches.Add(1)
		end := start + c.batch
		if end > c.n {
			end = c.n
		}
		stopped := walk(start, end)
		c.walked.Add(int64(stopped - start))
		if stopped < end {
			return // walk recorded its failure through fail
		}
	}
}

// Filter scans items with workers goroutines and returns the items keep
// accepted, in document order. keep may be called from multiple goroutines
// concurrently; an error (or context cancellation) aborts the scan and the
// lowest-index error is returned.
func Filter[T any](ctx context.Context, o Options, items []T, keep func(i int, item T) (bool, error)) ([]T, error) {
	workers, batch := plan(o, len(items))
	c := &cursorLoop{n: len(items), batch: batch}
	runs := make([][]run[T], workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.work(ctx, func(start, end int) int {
				var kept []T
				for i := start; i < end; i++ {
					ok, err := keep(i, items[i])
					if err != nil {
						c.fail(i, err)
						return i
					}
					if ok {
						kept = append(kept, items[i])
					}
				}
				if len(kept) > 0 {
					runs[w] = append(runs[w], run[T]{start: start, items: kept})
				}
				return end
			})
		}(w)
	}
	wg.Wait()
	observe(ctx, o, obs.KindParallel, workers, c.walked.Load(), c.batches.Load(), c.firstEr)
	if c.firstEr != nil {
		return nil, c.firstEr
	}
	return mergeRuns(runs), nil
}

// mergeRuns flattens per-worker runs back into document order.
func mergeRuns[T any](perWorker [][]run[T]) []T {
	var all []run[T]
	total := 0
	for _, rs := range perWorker {
		for _, r := range rs {
			total += len(r.items)
		}
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].start < all[j].start })
	out := make([]T, 0, total)
	for _, r := range all {
		out = append(out, r.items...)
	}
	return out
}

// Map scans items with workers goroutines, producing one output per input
// at the same index. fn may be called from multiple goroutines
// concurrently; an error aborts the scan and the partial output is
// discarded.
func Map[T, R any](ctx context.Context, o Options, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	workers, batch := plan(o, len(items))
	c := &cursorLoop{n: len(items), batch: batch}
	out := make([]R, len(items))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.work(ctx, func(start, end int) int {
				for i := start; i < end; i++ {
					r, err := fn(i, items[i])
					if err != nil {
						c.fail(i, err)
						return i
					}
					out[i] = r
				}
				return end
			})
		}()
	}
	wg.Wait()
	observe(ctx, o, obs.KindParallel, workers, c.walked.Load(), c.batches.Load(), c.firstEr)
	if c.firstEr != nil {
		return nil, c.firstEr
	}
	return out, nil
}

// Stream runs a sequential scan for the engines whose modelled system is
// single-threaded. A negative n scans an unbounded input (a decoder stream
// whose length is unknown upfront). step reports whether item i was
// consumed and the scan should continue; returning false stops without
// counting that call (end of input, result limits). Cancellation is checked
// once per batch, like the parallel kernels. Stream returns the number of
// items consumed.
func Stream(ctx context.Context, o Options, n int, step func(i int) (bool, error)) (done int, err error) {
	_, batch := plan(Options{Batch: o.Batch, Engine: o.Engine}, n)
	var batches int64
	defer func() { observe(ctx, o, obs.KindSequential, 1, int64(done), batches, err) }()
	for n < 0 || done < n {
		if cerr := ctx.Err(); cerr != nil {
			return done, cerr
		}
		batches++
		end := done + batch
		if n >= 0 && end > n {
			end = n
		}
		for done < end {
			ok, serr := step(done)
			if serr != nil {
				return done, serr
			}
			if !ok {
				return done, nil
			}
			done++
		}
	}
	return done, nil
}

// observe reports one finished pass into the scope attached to ctx: the
// scan.* counters plus one scan trace event. A cancelled pass also bumps
// the cancel counter. No Duration is recorded — this package never reads
// the clock.
func observe(ctx context.Context, o Options, kind string, workers int, items, batches int64, err error) {
	sc := obs.From(ctx)
	if !sc.Enabled() {
		return
	}
	sc.Counter(obs.MScanItems).Add(items)
	sc.Counter(obs.MScanBatches).Add(batches)
	sc.Counter(obs.MScanWorkers).Add(int64(workers))
	ev := obs.Event{
		Type:    obs.EvScan,
		Engine:  o.Engine,
		Kind:    kind,
		Scanned: items,
		Workers: workers,
	}
	if err != nil {
		ev.Err = err.Error()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			sc.Counter(obs.MScanCancels).Inc()
		}
	}
	sc.Record(ev)
}
