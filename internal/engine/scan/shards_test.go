package scan_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/engine/scan"
	"github.com/joda-explore/betze/internal/obs"
)

// cut slices items into size-length shards (last one shorter), the shape
// FilterShards consumes.
func cut(items []int, size int) [][]int {
	var shards [][]int
	for start := 0; start < len(items); start += size {
		end := start + size
		if end > len(items) {
			end = len(items)
		}
		shards = append(shards, items[start:end])
	}
	return shards
}

// TestFilterShardsChunkBoundaries is the chunk-boundary/order-preservation
// regression: shard size 1, shard size larger than the dataset, and a
// dataset that is not a multiple of the shard size must all produce exactly
// the sequential reference result, with sound skips (shards containing no
// match) changing nothing.
func TestFilterShardsChunkBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for _, n := range []int{0, 1, 7, 100, 257} {
		items := make([]int, n)
		for i := range items {
			items[i] = r.Intn(1000)
		}
		keepItem := func(v int) bool { return v%3 == 0 }
		var want []int
		for _, v := range items {
			if keepItem(v) {
				want = append(want, v)
			}
		}
		for _, size := range []int{1, 4, 10, n + 1} {
			if size < 1 {
				size = 1
			}
			shards := cut(items, size)
			for _, workers := range []int{1, 4} {
				// A shard is "prunable" when no item in it matches —
				// exactly the guarantee a sound zone map gives.
				got, skipped, err := scan.FilterShards(context.Background(), scan.Options{Workers: workers}, len(shards),
					func(i int) ([]int, bool) {
						prunable := true
						for _, v := range shards[i] {
							if keepItem(v) {
								prunable = false
								break
							}
						}
						return shards[i], prunable
					},
					func(w int, docs []int, keep []bool) (int, error) {
						matched := 0
						for j, v := range docs {
							keep[j] = keepItem(v)
							if keep[j] {
								matched++
							}
						}
						return matched, nil
					})
				if err != nil {
					t.Fatalf("n=%d size=%d workers=%d: %v", n, size, workers, err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("n=%d size=%d workers=%d: kept %v, want %v", n, size, workers, got, want)
				}
				if skipped < 0 || int(skipped) > n {
					t.Fatalf("n=%d size=%d: skipped %d items out of %d", n, size, skipped, n)
				}
			}
		}
	}
}

// TestFilterShardsSkippedItemCount checks the skipped-items accounting: the
// kernel sums the sizes of skipped shards without evaluating them.
func TestFilterShardsSkippedItemCount(t *testing.T) {
	shards := cut(ints(100), 7) // 15 shards: 14×7 + 1×2
	var evaluated atomic.Int64
	got, skipped, err := scan.FilterShards(context.Background(), scan.Options{Workers: 4}, len(shards),
		func(i int) ([]int, bool) { return shards[i], i%2 == 1 },
		func(w int, docs []int, keep []bool) (int, error) {
			evaluated.Add(int64(len(docs)))
			for j := range docs {
				keep[j] = true
			}
			return len(docs), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var wantSkip, wantKeep int64
	for i, sh := range shards {
		if i%2 == 1 {
			wantSkip += int64(len(sh))
		} else {
			wantKeep += int64(len(sh))
		}
	}
	if skipped != wantSkip {
		t.Errorf("skipped = %d, want %d", skipped, wantSkip)
	}
	if evaluated.Load() != wantKeep || int64(len(got)) != wantKeep {
		t.Errorf("evaluated %d kept %d, want %d", evaluated.Load(), len(got), wantKeep)
	}
}

// TestFilterShardsWorkerIndex pins the per-worker state contract: eval's
// worker argument stays inside [0, Workers) so callers can pre-size
// per-worker evaluator slots.
func TestFilterShardsWorkerIndex(t *testing.T) {
	const workers = 3
	shards := cut(ints(500), 5)
	var bad atomic.Int64
	_, _, err := scan.FilterShards(context.Background(), scan.Options{Workers: workers}, len(shards),
		func(i int) ([]int, bool) { return shards[i], false },
		func(w int, docs []int, keep []bool) (int, error) {
			if w < 0 || w >= workers {
				bad.Store(int64(w) + 1)
			}
			for j := range docs {
				keep[j] = false
			}
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if b := bad.Load(); b != 0 {
		t.Fatalf("eval saw worker index %d, want [0, %d)", b-1, workers)
	}
}

func TestFilterShardsReportsLowestIndexError(t *testing.T) {
	shards := cut(ints(64), 2)
	boom := errors.New("boom")
	for round := 0; round < 20; round++ {
		_, _, err := scan.FilterShards(context.Background(), scan.Options{Workers: 8}, len(shards),
			func(i int) ([]int, bool) { return shards[i], false },
			func(w int, docs []int, keep []bool) (int, error) {
				if docs[0] >= 10 { // shards 5+ all fail; lowest must win
					return 0, fmt.Errorf("shard starting at %d: %w", docs[0], boom)
				}
				for j := range docs {
					keep[j] = false
				}
				return 0, nil
			})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("round %d: err = %v", round, err)
		}
		if got := err.Error(); got != "shard starting at 10: boom" {
			t.Fatalf("round %d: non-lowest error reported: %q", round, got)
		}
	}
}

func TestStreamShardsSkipsAndCounts(t *testing.T) {
	shards := cut(ints(50), 8) // 7 shards
	var walked []int
	skipped, err := scan.StreamShards(context.Background(), scan.Options{}, len(shards),
		func(i int) bool { return i == 1 || i == 4 },
		func(i int) (int64, error) {
			walked = append(walked, i)
			return int64(len(shards[i])), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if fmt.Sprint(walked) != fmt.Sprint([]int{0, 2, 3, 5, 6}) {
		t.Errorf("walked %v", walked)
	}
}

func TestStreamShardsStopsOnBodyError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	_, err := scan.StreamShards(context.Background(), scan.Options{}, 10,
		func(i int) bool { return false },
		func(i int) (int64, error) {
			calls++
			if i == 3 {
				return 0, boom
			}
			return 1, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 {
		t.Fatalf("body ran %d times after an error at shard 3", calls)
	}
}

// TestShardScansEmitObsVocabulary checks the shard kernels' observability:
// the scan.shards_* counters and the Skipped field of the scan event.
func TestShardScansEmitObsVocabulary(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	rec.SetClock(func() time.Time { return time.Unix(0, 0) })
	ctx := obs.With(context.Background(), obs.Scope{Metrics: reg, Trace: rec})

	shards := cut(ints(100), 10) // 10 shards of 10
	if _, _, err := scan.FilterShards(ctx, scan.Options{Workers: 2, Engine: "joda"}, len(shards),
		func(i int) ([]int, bool) { return shards[i], i < 4 }, // skip 4, scan 6
		func(w int, docs []int, keep []bool) (int, error) {
			for j := range docs {
				keep[j] = true
			}
			return len(docs), nil
		}); err != nil {
		t.Fatal(err)
	}
	if _, err := scan.StreamShards(ctx, scan.Options{Engine: "mongodb"}, 5,
		func(i int) bool { return i == 0 }, // skip 1, scan 4
		func(i int) (int64, error) { return 10, nil }); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter(obs.MScanShardsScanned).Value(); got != 10 {
		t.Errorf("%s = %d, want 10", obs.MScanShardsScanned, got)
	}
	if got := reg.Counter(obs.MScanShardsSkipped).Value(); got != 5 {
		t.Errorf("%s = %d, want 5", obs.MScanShardsSkipped, got)
	}
	if got := reg.Counter(obs.MScanItems).Value(); got != 100 {
		t.Errorf("%s = %d, want 100 (60 parallel + 40 sequential)", obs.MScanItems, got)
	}

	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("recorded %d events, want 2", len(events))
	}
	par, seq := events[0], events[1]
	if par.Type != obs.EvScan || par.Kind != obs.KindParallel || par.Engine != "joda" || par.Scanned != 60 || par.Skipped != 4 {
		t.Errorf("parallel event = %+v", par)
	}
	if seq.Type != obs.EvScan || seq.Kind != obs.KindSequential || seq.Engine != "mongodb" || seq.Scanned != 40 || seq.Skipped != 1 {
		t.Errorf("sequential event = %+v", seq)
	}
}

// TestFilterShardsConcurrentCancelMidShard is the race-detector exercise:
// several sharded scans run concurrently, each cancelled from inside an
// eval call (mid-shard), while a zone-style skip function runs on other
// shards. Run with -race (make race) this covers the kernel's cursor,
// error path and per-worker buffers under cancellation.
func TestFilterShardsConcurrentCancelMidShard(t *testing.T) {
	shards := cut(ints(2000), 5) // 400 shards
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var seen atomic.Int64
			_, _, err := scan.FilterShards(ctx, scan.Options{Workers: 4}, len(shards),
				func(i int) ([]int, bool) { return shards[i], i%7 == int(seen.Load())%7 },
				func(w int, docs []int, keep []bool) (int, error) {
					if seen.Add(1) == int64(3+g) {
						cancel() // mid-shard: the claim loop detects it on the next claim
					}
					for j := range docs {
						keep[j] = docs[j]%2 == 0
					}
					return len(docs) / 2, nil
				})
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("goroutine %d: err = %v", g, err)
			}
			if err == nil {
				t.Errorf("goroutine %d: cancellation mid-shard went unnoticed across %d shards", g, len(shards))
			}
		}(g)
	}
	wg.Wait()
}
