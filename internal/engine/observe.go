package engine

import (
	"context"

	"github.com/joda-explore/betze/internal/obs"
	"github.com/joda-explore/betze/internal/query"
)

// ObserveImport reports one finished import into the observability scope
// attached to ctx: an import trace event plus per-engine counters and an
// import-duration histogram. A context without a scope makes this a no-op.
func ObserveImport(ctx context.Context, engineName, dataset string, st ImportStats, err error) {
	sc := obs.From(ctx)
	if !sc.Enabled() {
		return
	}
	ev := obs.Event{
		Type:     obs.EvImport,
		Engine:   engineName,
		Dataset:  dataset,
		Docs:     st.Docs,
		Bytes:    st.Bytes,
		Duration: st.Duration,
	}
	if err != nil {
		ev.Type = obs.EvError
		ev.Err = err.Error()
		sc.Counter(obs.EngineMetric(engineName, obs.EMImportErrors)).Inc()
	} else {
		sc.Counter(obs.EngineMetric(engineName, obs.EMImports)).Inc()
		sc.Counter(obs.EngineMetric(engineName, obs.EMImportedDocs)).Add(st.Docs)
		sc.Observe(obs.EngineMetric(engineName, obs.EMImport), st.Duration)
	}
	sc.Record(ev)
}

// ObserveExec reports one finished query execution: a query_execute trace
// event carrying the ExecStats plus per-engine counters and a
// query-duration histogram.
func ObserveExec(ctx context.Context, engineName string, q *query.Query, st ExecStats, err error) {
	sc := obs.From(ctx)
	if !sc.Enabled() {
		return
	}
	ev := obs.Event{
		Type:     obs.EvQueryExecute,
		Engine:   engineName,
		Query:    q.ID,
		Dataset:  q.Base,
		Scanned:  st.Scanned,
		Skipped:  st.Skipped,
		Matched:  st.Matched,
		Returned: st.Returned,
		Bytes:    st.OutputBytes,
		Duration: st.Duration,
	}
	if err != nil {
		ev.Type = obs.EvError
		ev.Err = err.Error()
		sc.Counter(obs.EngineMetric(engineName, obs.EMQueryErrors)).Inc()
	} else {
		sc.Counter(obs.EngineMetric(engineName, obs.EMQueries)).Inc()
		sc.Counter(obs.EngineMetric(engineName, obs.EMDocsScanned)).Add(st.Scanned)
		sc.Observe(obs.EngineMetric(engineName, obs.EMQuery), st.Duration)
	}
	sc.Record(ev)
}

// ObserveCache reports a cache hit or miss for a filtered query.
func ObserveCache(ctx context.Context, engineName string, q *query.Query, hit bool) {
	sc := obs.From(ctx)
	if !sc.Enabled() {
		return
	}
	typ := obs.EvCacheMiss
	metric := obs.EMCacheMisses
	if hit {
		typ = obs.EvCacheHit
		metric = obs.EMCacheHits
	}
	sc.Counter(obs.EngineMetric(engineName, metric)).Inc()
	sc.Record(obs.Event{Type: typ, Engine: engineName, Query: q.ID, Dataset: q.Base})
}

// ObserveEviction reports an engine dropping its parsed datasets.
func ObserveEviction(ctx context.Context, engineName string) {
	sc := obs.From(ctx)
	if !sc.Enabled() {
		return
	}
	sc.Counter(obs.EngineMetric(engineName, obs.EMEvictions)).Inc()
	sc.Record(obs.Event{Type: obs.EvEviction, Engine: engineName})
}
