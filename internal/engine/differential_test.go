package engine_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

// The differential fuzz: random predicates over random documents must yield
// identical results on all four engines. This is the strongest correctness
// check in the repository — any divergence between the typed evaluator
// (jodasim), the lazy BSON walker (mongosim), the JSONB decoder (pgsim) and
// the boxed-value interpreter (jqsim) fails it.

var fuzzPaths = []jsonval.Path{"/a", "/b", "/c", "/nest/x", "/nest/y", "/arr", "/obj", "/missing"}

func fuzzPredicate(r *rand.Rand, depth int) query.Predicate {
	if depth > 0 && r.Intn(3) == 0 {
		l, rr := fuzzPredicate(r, depth-1), fuzzPredicate(r, depth-1)
		if r.Intn(2) == 0 {
			return query.And{Left: l, Right: rr}
		}
		return query.Or{Left: l, Right: rr}
	}
	p := fuzzPaths[r.Intn(len(fuzzPaths))]
	ops := []query.CmpOp{query.Lt, query.Le, query.Gt, query.Ge, query.Eq}
	switch r.Intn(9) {
	case 0:
		return query.Exists{Path: p}
	case 1:
		return query.IsString{Path: p}
	case 2:
		return query.IntEq{Path: p, Value: int64(r.Intn(20) - 10)}
	case 3:
		return query.FloatCmp{Path: p, Op: ops[r.Intn(len(ops))], Value: float64(r.Intn(200)-100) / 4}
	case 4:
		return query.StrEq{Path: p, Value: fuzzString(r)}
	case 5:
		s := fuzzString(r)
		n := 1 + r.Intn(2)
		if n > len(s) {
			n = len(s)
		}
		return query.HasPrefix{Path: p, Prefix: s[:n]}
	case 6:
		return query.BoolEq{Path: p, Value: r.Intn(2) == 0}
	case 7:
		return query.ArrSize{Path: p, Op: ops[r.Intn(len(ops))], Value: r.Intn(5)}
	default:
		return query.ObjSize{Path: p, Op: ops[r.Intn(len(ops))], Value: r.Intn(5)}
	}
}

func fuzzString(r *rand.Rand) string {
	base := []string{"alpha", "beta", "gamma", "um läut", "x"}
	return base[r.Intn(len(base))]
}

func fuzzValue(r *rand.Rand, depth int) jsonval.Value {
	max := 7
	if depth <= 0 {
		max = 5
	}
	switch r.Intn(max) {
	case 0:
		return jsonval.NullValue()
	case 1:
		return jsonval.BoolValue(r.Intn(2) == 0)
	case 2:
		return jsonval.IntValue(int64(r.Intn(20) - 10))
	case 3:
		// Halves stay exact in float64, keeping jq's double semantics
		// aligned with the exact engines.
		return jsonval.FloatValue(float64(r.Intn(200)-100) / 2)
	case 4:
		return jsonval.StringValue(fuzzString(r))
	case 5:
		n := r.Intn(5)
		elems := make([]jsonval.Value, n)
		for i := range elems {
			elems[i] = fuzzValue(r, depth-1)
		}
		return jsonval.ArrayValue(elems...)
	default:
		n := r.Intn(4)
		members := make([]jsonval.Member, 0, n)
		used := map[string]bool{}
		for i := 0; i < n; i++ {
			k := string(rune('p' + r.Intn(4)))
			if used[k] {
				continue
			}
			used[k] = true
			members = append(members, jsonval.Member{Key: k, Value: fuzzValue(r, depth-1)})
		}
		return jsonval.ObjectValue(members...)
	}
}

// fuzzTransform builds a 1–3 op transformation stage. Renames always target
// fresh names ("r0"…) that no fuzz document contains, so a rename can never
// manufacture duplicate keys and the canonicalised outputs stay comparable.
func fuzzTransform(r *rand.Rand) *query.Transform {
	n := 1 + r.Intn(3)
	ops := make([]query.TransformOp, 0, n)
	for i := 0; i < n; i++ {
		p := fuzzPaths[r.Intn(len(fuzzPaths))]
		switch r.Intn(3) {
		case 0:
			ops = append(ops, query.TransformOp{
				Kind: query.TransformRename, Path: p, NewName: fmt.Sprintf("r%d", i),
			})
		case 1:
			ops = append(ops, query.TransformOp{Kind: query.TransformRemove, Path: p})
		default:
			ops = append(ops, query.TransformOp{
				Kind: query.TransformAdd, Path: jsonval.Path(fmt.Sprintf("/t%d", i)),
				Value: fuzzValue(r, 0),
			})
		}
	}
	return &query.Transform{Ops: ops}
}

func fuzzDoc(r *rand.Rand) jsonval.Value {
	var members []jsonval.Member
	for _, key := range []string{"a", "b", "c"} {
		if r.Intn(4) > 0 {
			members = append(members, jsonval.Member{Key: key, Value: fuzzValue(r, 1)})
		}
	}
	if r.Intn(2) == 0 {
		members = append(members, jsonval.Member{Key: "nest", Value: jsonval.ObjectValue(
			jsonval.Member{Key: "x", Value: fuzzValue(r, 1)},
			jsonval.Member{Key: "y", Value: fuzzValue(r, 1)},
		)})
	}
	if r.Intn(2) == 0 {
		n := r.Intn(5)
		elems := make([]jsonval.Value, n)
		for i := range elems {
			elems[i] = fuzzValue(r, 0)
		}
		members = append(members, jsonval.Member{Key: "arr", Value: jsonval.ArrayValue(elems...)})
	}
	if r.Intn(2) == 0 {
		members = append(members, jsonval.Member{Key: "obj", Value: fuzzValue(r, 1)})
	}
	return jsonval.ObjectValue(members...)
}

func TestDifferentialFuzzAcrossEngines(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	docs := make([]jsonval.Value, 400)
	for i := range docs {
		docs[i] = fuzzDoc(r)
	}
	engines := allEngines(t, "fz", docs)
	ctx := context.Background()

	const rounds = 120
	for round := 0; round < rounds; round++ {
		q := &query.Query{ID: fmt.Sprintf("f%d", round), Base: "fz", Filter: fuzzPredicate(r, 2)}
		if r.Intn(3) == 0 {
			q.Transform = fuzzTransform(r)
		}
		if r.Intn(3) == 0 {
			agg := &query.Aggregation{Path: fuzzPaths[r.Intn(len(fuzzPaths))]}
			if r.Intn(2) == 0 {
				agg.Func = query.Count
			} else {
				agg.Func = query.Sum
			}
			if r.Intn(2) == 0 {
				agg.Grouped = true
				agg.GroupBy = fuzzPaths[r.Intn(len(fuzzPaths))]
			}
			q.Agg = agg
		}
		var refOut string
		var refMatched int64
		var refName string
		for i, e := range engines {
			var out bytes.Buffer
			stats, err := e.Execute(ctx, q, &out)
			if err != nil {
				t.Fatalf("round %d: %s executing %s: %v", round, e.Name(), q, err)
			}
			got := canonicalise(t, out.String())
			if i == 0 {
				refOut, refMatched, refName = got, stats.Matched, e.Name()
				continue
			}
			if stats.Matched != refMatched {
				t.Fatalf("round %d: %s matched %d, %s matched %d for %s",
					round, e.Name(), stats.Matched, refName, refMatched, q)
			}
			if got != refOut {
				t.Fatalf("round %d: %s output differs from %s for %s:\n--- got ---\n%.500s\n--- want ---\n%.500s",
					round, e.Name(), refName, q, got, refOut)
			}
		}
		// Every engine must also agree with the reference evaluator, and
		// the compiled predicate must agree with the interpreted one on
		// every single document (the compiled-vs-reference differential).
		compiled := query.Compile(q.Filter)
		var evalMatched int64
		for di, d := range docs {
			m := q.Matches(d)
			if m {
				evalMatched++
			}
			if cm := compiled.Eval(d); cm != m {
				t.Fatalf("round %d: compiled predicate = %v, reference evaluator = %v on doc %d for %s",
					round, cm, m, di, q)
			}
		}
		if evalMatched != refMatched {
			t.Fatalf("round %d: engines matched %d, reference evaluator %d for %s",
				round, refMatched, evalMatched, q)
		}
	}
}

var _ = engine.ErrUnknownDataset // keep the import if helpers change

// clusteredDoc builds a fuzz document with a monotone /seq and a banded
// /bucket string, so datasets built from it in index order are clustered the
// way zone maps exploit: every shard covers a narrow seq range and a couple
// of bucket values.
func clusteredDoc(r *rand.Rand, i int) jsonval.Value {
	members := []jsonval.Member{
		{Key: "bucket", Value: jsonval.StringValue(fmt.Sprintf("b%02d", i/100))},
		{Key: "seq", Value: jsonval.IntValue(int64(i))},
	}
	for _, key := range []string{"a", "b"} {
		if r.Intn(4) > 0 {
			members = append(members, jsonval.Member{Key: key, Value: fuzzValue(r, 1)})
		}
	}
	return jsonval.ObjectValue(members...)
}

// selectivePredicate targets the clustered attributes so that a sound zone
// map can rule out most shards.
func selectivePredicate(r *rand.Rand, n int) query.Predicate {
	switch r.Intn(4) {
	case 0:
		return query.IntEq{Path: "/seq", Value: int64(r.Intn(n))}
	case 1:
		lo := float64(r.Intn(n - n/10))
		return query.And{
			Left:  query.FloatCmp{Path: "/seq", Op: query.Ge, Value: lo},
			Right: query.FloatCmp{Path: "/seq", Op: query.Lt, Value: lo + float64(1+r.Intn(n/10))},
		}
	case 2:
		return query.StrEq{Path: "/bucket", Value: fmt.Sprintf("b%02d", r.Intn(n/100))}
	default:
		return query.HasPrefix{Path: "/bucket", Prefix: fmt.Sprintf("b%d", r.Intn(n/1000))}
	}
}

// TestPruneDifferentialAcrossEngines is the cross-engine prune-correctness
// differential on data where pruning actually fires: selective predicates
// over clustered documents, optionally conjoined with random fuzz trees. The
// unprunable jq engine and the reference evaluator are the ground truth the
// zone-mapped engines must reproduce, and the accumulated skip counters
// prove the differential is non-vacuous — the pruned code path really ran.
func TestPruneDifferentialAcrossEngines(t *testing.T) {
	const n = 3000
	r := rand.New(rand.NewSource(4026))
	docs := make([]jsonval.Value, n)
	for i := range docs {
		docs[i] = clusteredDoc(r, i)
	}
	engines := allEngines(t, "pz", docs)
	ctx := context.Background()

	skippedBy := make([]int64, len(engines))
	const rounds = 80
	for round := 0; round < rounds; round++ {
		filter := selectivePredicate(r, n)
		if r.Intn(2) == 0 {
			filter = query.And{Left: filter, Right: fuzzPredicate(r, 1)}
		}
		q := &query.Query{ID: fmt.Sprintf("p%d", round), Base: "pz", Filter: filter}
		var refOut string
		var refMatched int64
		var refName string
		for i, e := range engines {
			var out bytes.Buffer
			stats, err := e.Execute(ctx, q, &out)
			if err != nil {
				t.Fatalf("round %d: %s executing %s: %v", round, e.Name(), q, err)
			}
			skippedBy[i] += stats.Skipped
			got := canonicalise(t, out.String())
			if i == 0 {
				refOut, refMatched, refName = got, stats.Matched, e.Name()
				continue
			}
			if stats.Matched != refMatched {
				t.Fatalf("round %d: %s matched %d, %s matched %d for %s",
					round, e.Name(), stats.Matched, refName, refMatched, q)
			}
			if got != refOut {
				t.Fatalf("round %d: %s output differs from %s for %s:\n--- got ---\n%.500s\n--- want ---\n%.500s",
					round, e.Name(), refName, q, got, refOut)
			}
		}
		var evalMatched int64
		for _, d := range docs {
			if q.Matches(d) {
				evalMatched++
			}
		}
		if evalMatched != refMatched {
			t.Fatalf("round %d: engines matched %d, reference evaluator %d for %s",
				round, refMatched, evalMatched, q)
		}
	}
	for i, e := range engines {
		if e.Name() == "jq" {
			if skippedBy[i] != 0 {
				t.Errorf("jq reported %d skipped documents without any zone maps", skippedBy[i])
			}
		} else if skippedBy[i] == 0 {
			t.Errorf("%s never pruned a shard across %d selective rounds — the differential is vacuous", e.Name(), rounds)
		}
	}
}
