package engine_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/engine/jodasim"
	"github.com/joda-explore/betze/internal/engine/jqsim"
	"github.com/joda-explore/betze/internal/engine/mongosim"
	"github.com/joda-explore/betze/internal/engine/pgsim"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

// corpus builds a heterogeneous document set exercising every predicate.
func corpus(n int, seed int64) []jsonval.Value {
	r := rand.New(rand.NewSource(seed))
	docs := make([]jsonval.Value, n)
	cities := []string{"berlin", "paris", "tokyo", "lima", "oslo"}
	for i := range docs {
		members := []jsonval.Member{
			{Key: "id", Value: jsonval.IntValue(int64(i))},
			{Key: "score", Value: jsonval.FloatValue(r.Float64() * 100)},
			{Key: "city", Value: jsonval.StringValue(cities[r.Intn(len(cities))])},
			{Key: "active", Value: jsonval.BoolValue(r.Intn(2) == 0)},
		}
		if r.Intn(2) == 0 {
			members = append(members, jsonval.Member{Key: "user", Value: jsonval.ObjectValue(
				jsonval.Member{Key: "name", Value: jsonval.StringValue(fmt.Sprintf("user_%02d", r.Intn(30)))},
				jsonval.Member{Key: "verified", Value: jsonval.BoolValue(r.Intn(4) == 0)},
				jsonval.Member{Key: "followers", Value: jsonval.IntValue(int64(r.Intn(100000)))},
			)})
		}
		if r.Intn(3) == 0 {
			tags := make([]jsonval.Value, r.Intn(6))
			for j := range tags {
				tags[j] = jsonval.StringValue(fmt.Sprintf("tag%d", j))
			}
			members = append(members, jsonval.Member{Key: "tags", Value: jsonval.ArrayValue(tags...)})
		}
		if r.Intn(5) == 0 {
			members = append(members, jsonval.Member{Key: "extra", Value: jsonval.NullValue()})
		}
		docs[i] = jsonval.ObjectValue(members...)
	}
	return docs
}

// writeDataset serialises docs as an NDJSON file.
func writeDataset(t *testing.T, dir string, name string, docs []jsonval.Value) string {
	t.Helper()
	path := filepath.Join(dir, name+".json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var buf []byte
	for _, d := range docs {
		buf = jsonval.AppendJSON(buf[:0], d)
		buf = append(buf, '\n')
		if _, err := f.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// allEngines builds one instance of each engine with the dataset imported.
func allEngines(t *testing.T, name string, docs []jsonval.Value) []engine.Engine {
	t.Helper()
	dir := t.TempDir()
	path := writeDataset(t, dir, name, docs)
	jq, err := jqsim.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	engines := []engine.Engine{
		jodasim.New(jodasim.Options{Threads: 4}),
		mongosim.New(mongosim.Options{}),
		pgsim.New(pgsim.Options{}),
		jq,
	}
	ctx := context.Background()
	for _, e := range engines {
		if _, err := e.ImportFile(ctx, name, path); err != nil {
			t.Fatalf("%s import: %v", e.Name(), err)
		}
	}
	t.Cleanup(func() {
		for _, e := range engines {
			e.Close()
		}
	})
	return engines
}

// testQueries covers every predicate type and aggregation shape.
func testQueries(base string) []*query.Query {
	preds := []query.Predicate{
		query.Exists{Path: "/user"},
		query.Exists{Path: "/extra"}, // null values still exist
		query.IsString{Path: "/city"},
		query.IntEq{Path: "/id", Value: 7},
		query.FloatCmp{Path: "/score", Op: query.Ge, Value: 50},
		query.FloatCmp{Path: "/user/followers", Op: query.Lt, Value: 50000},
		query.StrEq{Path: "/city", Value: "berlin"},
		query.HasPrefix{Path: "/user/name", Prefix: "user_1"},
		query.BoolEq{Path: "/active", Value: false},
		query.ArrSize{Path: "/tags", Op: query.Gt, Value: 2},
		query.ObjSize{Path: "/user", Op: query.Ge, Value: 3},
		query.And{Left: query.BoolEq{Path: "/active", Value: true}, Right: query.FloatCmp{Path: "/score", Op: query.Lt, Value: 80}},
		query.Or{Left: query.StrEq{Path: "/city", Value: "oslo"}, Right: query.Exists{Path: "/tags"}},
		query.And{
			Left:  query.Or{Left: query.Exists{Path: "/user"}, Right: query.Exists{Path: "/tags"}},
			Right: query.FloatCmp{Path: "/score", Op: query.Ge, Value: 10},
		},
	}
	var out []*query.Query
	for i, p := range preds {
		out = append(out, &query.Query{ID: fmt.Sprintf("q%d", i), Base: base, Filter: p})
	}
	// Aggregation shapes.
	out = append(out,
		&query.Query{ID: "agg1", Base: base, Filter: preds[4], Agg: &query.Aggregation{Func: query.Count, Path: jsonval.RootPath}},
		&query.Query{ID: "agg2", Base: base, Filter: preds[4], Agg: &query.Aggregation{Func: query.Count, Path: "/user"}},
		&query.Query{ID: "agg3", Base: base, Filter: preds[4], Agg: &query.Aggregation{Func: query.Sum, Path: "/id"}},
		&query.Query{ID: "agg4", Base: base, Agg: &query.Aggregation{Func: query.Count, Path: jsonval.RootPath, Grouped: true, GroupBy: "/city"}},
		&query.Query{ID: "agg5", Base: base, Agg: &query.Aggregation{Func: query.Sum, Path: "/score", Grouped: true, GroupBy: "/active"}},
		&query.Query{ID: "agg6", Base: base, Agg: &query.Aggregation{Func: query.Count, Path: jsonval.RootPath, Grouped: true, GroupBy: "/user/name"}},
	)
	return out
}

// canonicalise reduces engine output to an order- and key-order-insensitive
// form: pgsim normalises JSONB member order (as PostgreSQL does) and grouped
// aggregation output order is engine-specific, so results compare by parsed
// value identity.
func canonicalise(t *testing.T, out string) string {
	t.Helper()
	trimmed := strings.TrimSpace(out)
	if trimmed == "" {
		return ""
	}
	lines := strings.Split(trimmed, "\n")
	keys := make([]string, len(lines))
	for i, line := range lines {
		v, err := jsonval.Parse([]byte(line))
		if err != nil {
			t.Fatalf("engine emitted invalid JSON %q: %v", line, err)
		}
		keys[i] = v.GroupKey()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func TestEnginesAgree(t *testing.T) {
	docs := corpus(3000, 51)
	engines := allEngines(t, "ds", docs)
	ctx := context.Background()
	for _, q := range testQueries("ds") {
		var reference string
		var refMatched int64
		for i, e := range engines {
			var out bytes.Buffer
			stats, err := e.Execute(ctx, q, &out)
			if err != nil {
				t.Fatalf("%s executing %s: %v", e.Name(), q, err)
			}
			got := canonicalise(t, out.String())
			if i == 0 {
				reference = got
				refMatched = stats.Matched
				continue
			}
			if stats.Matched != refMatched {
				t.Errorf("%s matched %d docs for %s, JODA matched %d", e.Name(), stats.Matched, q, refMatched)
			}
			if got != reference {
				t.Errorf("%s output differs for %s:\n--- got ---\n%.400s\n--- want ---\n%.400s", e.Name(), q, got, reference)
			}
		}
	}
}

func TestEnginesAgreeOnStoredDatasets(t *testing.T) {
	docs := corpus(1500, 52)
	engines := allEngines(t, "ds", docs)
	ctx := context.Background()
	store := &query.Query{ID: "s1", Base: "ds", Store: "derived",
		Filter: query.FloatCmp{Path: "/score", Op: query.Ge, Value: 30}}
	followup := &query.Query{ID: "s2", Base: "derived",
		Filter: query.BoolEq{Path: "/active", Value: true}}
	var want int64 = -1
	for _, e := range engines {
		if _, err := e.Execute(ctx, store, io.Discard); err != nil {
			t.Fatalf("%s store: %v", e.Name(), err)
		}
		stats, err := e.Execute(ctx, followup, io.Discard)
		if err != nil {
			t.Fatalf("%s follow-up: %v", e.Name(), err)
		}
		if want == -1 {
			want = stats.Matched
		} else if stats.Matched != want {
			t.Errorf("%s matched %d on stored dataset, want %d", e.Name(), stats.Matched, want)
		}
	}
	if want <= 0 {
		t.Fatalf("derived query matched nothing")
	}
}

func TestEnginesResetDropsDerived(t *testing.T) {
	docs := corpus(300, 53)
	engines := allEngines(t, "ds", docs)
	ctx := context.Background()
	store := &query.Query{ID: "s", Base: "ds", Store: "tmp", Filter: query.Exists{Path: "/id"}}
	q := &query.Query{ID: "r", Base: "tmp"}
	for _, e := range engines {
		if _, err := e.Execute(ctx, store, io.Discard); err != nil {
			t.Fatalf("%s store: %v", e.Name(), err)
		}
		if _, err := e.Execute(ctx, q, io.Discard); err != nil {
			t.Fatalf("%s pre-reset read: %v", e.Name(), err)
		}
		if err := e.Reset(); err != nil {
			t.Fatalf("%s reset: %v", e.Name(), err)
		}
		if _, err := e.Execute(ctx, q, io.Discard); err == nil {
			t.Errorf("%s kept derived dataset across Reset", e.Name())
		}
		// Base dataset must survive.
		if _, err := e.Execute(ctx, &query.Query{ID: "b", Base: "ds"}, io.Discard); err != nil {
			t.Errorf("%s lost base dataset on Reset: %v", e.Name(), err)
		}
	}
}

func TestEnginesUnknownDataset(t *testing.T) {
	engines := allEngines(t, "ds", corpus(10, 54))
	for _, e := range engines {
		_, err := e.Execute(context.Background(), &query.Query{Base: "ghost"}, io.Discard)
		if err == nil {
			t.Errorf("%s accepted unknown dataset", e.Name())
		} else if !errors.Is(err, engine.ErrUnknownDataset) {
			// The resilient executor classifies errors with errors.Is, so a
			// sim returning an unwrapped error breaks crash detection.
			t.Errorf("%s unknown-dataset error not wrapped: %v", e.Name(), err)
		}
	}
}

func TestEnginesContextCancellation(t *testing.T) {
	docs := corpus(50000, 55)
	engines := allEngines(t, "ds", docs)
	for _, e := range engines {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, err := e.Execute(ctx, &query.Query{Base: "ds", Filter: query.FloatCmp{Path: "/score", Op: query.Ge, Value: 0}}, io.Discard)
		cancel()
		if err == nil {
			t.Logf("%s finished before the deadline (machine fast); not an error", e.Name())
		} else if ctx.Err() == nil {
			t.Errorf("%s returned unexpected error: %v", e.Name(), err)
		}
	}
}

func TestImportStats(t *testing.T) {
	docs := corpus(500, 56)
	dir := t.TempDir()
	path := writeDataset(t, dir, "ds", docs)
	ctx := context.Background()
	for _, e := range []engine.Engine{
		jodasim.New(jodasim.Options{}),
		mongosim.New(mongosim.Options{}),
		pgsim.New(pgsim.Options{}),
	} {
		stats, err := e.ImportFile(ctx, "ds", path)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if stats.Docs != 500 {
			t.Errorf("%s imported %d docs", e.Name(), stats.Docs)
		}
		if stats.Bytes <= 0 || stats.StoredBytes <= 0 {
			t.Errorf("%s byte stats: %+v", e.Name(), stats)
		}
		e.Close()
	}
}

func TestMongoCompressionShrinksStorage(t *testing.T) {
	docs := corpus(2000, 57)
	dir := t.TempDir()
	path := writeDataset(t, dir, "ds", docs)
	ctx := context.Background()
	comp := mongosim.New(mongosim.Options{})
	raw := mongosim.New(mongosim.Options{DisableCompression: true})
	cs, err := comp.ImportFile(ctx, "ds", path)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := raw.ImportFile(ctx, "ds", path)
	if err != nil {
		t.Fatal(err)
	}
	if cs.StoredBytes >= rs.StoredBytes {
		t.Errorf("compression did not shrink storage: %d vs %d", cs.StoredBytes, rs.StoredBytes)
	}
}

func TestPgsimRejectsNullByte(t *testing.T) {
	docs := []jsonval.Value{
		jsonval.ObjectValue(jsonval.Member{Key: "body", Value: jsonval.StringValue("fine")}),
		jsonval.ObjectValue(jsonval.Member{Key: "body", Value: jsonval.StringValue("bad\x00byte")}),
	}
	dir := t.TempDir()
	path := writeDataset(t, dir, "reddit", docs)
	e := pgsim.New(pgsim.Options{})
	_, err := e.ImportFile(context.Background(), "reddit", path)
	if err == nil || !strings.Contains(err.Error(), "u0000") {
		t.Errorf("pgsim accepted U+0000 document: %v", err)
	}
	// The other engines must accept the same file (as in Table III, where
	// only PostgreSQL failed to load Reddit).
	for _, other := range []engine.Engine{mongosim.New(mongosim.Options{}), jodasim.New(jodasim.Options{})} {
		if _, err := other.ImportFile(context.Background(), "reddit", path); err != nil {
			t.Errorf("%s rejected the NUL dataset: %v", other.Name(), err)
		}
	}
}

func TestJodaThreadScaling(t *testing.T) {
	docs := corpus(30000, 58)
	e := jodasim.New(jodasim.Options{Threads: 1, DisableCache: true})
	e.ImportValues("ds", docs)
	q := &query.Query{Base: "ds", Filter: query.FloatCmp{Path: "/score", Op: query.Ge, Value: 30}}
	measure := func(threads int) time.Duration {
		e.SetThreads(threads)
		best := time.Hour
		for i := 0; i < 3; i++ {
			stats, err := e.Execute(context.Background(), q, io.Discard)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Duration < best {
				best = stats.Duration
			}
		}
		return best
	}
	t1 := measure(1)
	t4 := measure(4)
	// Expect a visible speedup; exact factor depends on the machine.
	if t4 > t1 {
		t.Logf("threads=1: %v, threads=4: %v (no speedup on this machine/load)", t1, t4)
	}
}

func TestJodaResultCache(t *testing.T) {
	docs := corpus(5000, 59)
	e := jodasim.New(jodasim.Options{Threads: 2})
	e.ImportValues("ds", docs)
	p1 := query.FloatCmp{Path: "/score", Op: query.Ge, Value: 20}
	p2 := query.BoolEq{Path: "/active", Value: true}
	q1 := &query.Query{Base: "ds", Filter: p1}
	q2 := &query.Query{Base: "ds", Filter: query.And{Left: p1, Right: p2}}
	ctx := context.Background()
	s1, err := e.Execute(ctx, q1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.Execute(ctx, q2, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if e.CacheHits() == 0 {
		t.Errorf("composed query did not hit the result cache")
	}
	if s2.Scanned != s1.Matched {
		t.Errorf("composed query scanned %d docs, cached ancestor has %d", s2.Scanned, s1.Matched)
	}
	// Uncached engine re-scans everything.
	raw := jodasim.New(jodasim.Options{Threads: 2, DisableCache: true})
	raw.ImportValues("ds", docs)
	raw.Execute(ctx, q1, io.Discard)
	s2raw, err := raw.Execute(ctx, q2, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s2raw.Scanned+s2raw.Skipped != int64(len(docs)) {
		t.Errorf("uncached engine walked %d scanned + %d skipped, want full %d",
			s2raw.Scanned, s2raw.Skipped, len(docs))
	}
	if s2raw.Matched != s2.Matched {
		t.Errorf("cache changed semantics: %d vs %d matches", s2.Matched, s2raw.Matched)
	}
}

func TestJodaEvictionReparses(t *testing.T) {
	docs := corpus(2000, 60)
	evict := jodasim.New(jodasim.Options{Threads: 2, Evict: true})
	evict.ImportValues("ds", docs)
	q := &query.Query{Base: "ds", Filter: query.Exists{Path: "/user"}}
	ctx := context.Background()
	s1, err := evict.Execute(ctx, q, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := evict.Execute(ctx, q, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Matched != s2.Matched {
		t.Errorf("eviction changed results: %d vs %d", s1.Matched, s2.Matched)
	}
	if evict.CacheHits() != 0 {
		t.Errorf("evicting engine used the cache")
	}
}

func TestMongoFullDecodeAblationAgrees(t *testing.T) {
	docs := corpus(2000, 61)
	lazy := mongosim.New(mongosim.Options{})
	full := mongosim.New(mongosim.Options{FullDecode: true})
	lazy.ImportValues("ds", docs)
	full.ImportValues("ds", docs)
	ctx := context.Background()
	for _, q := range testQueries("ds") {
		a, err := lazy.Execute(ctx, q, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		b, err := full.Execute(ctx, q, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if a.Matched != b.Matched {
			t.Errorf("lazy/full decode disagree on %s: %d vs %d", q, a.Matched, b.Matched)
		}
	}
}

func TestPgsimLazyAblationAgrees(t *testing.T) {
	docs := corpus(2000, 62)
	std := pgsim.New(pgsim.Options{})
	lazy := pgsim.New(pgsim.Options{FullDecode: true})
	std.ImportValues("ds", docs)
	lazy.ImportValues("ds", docs)
	ctx := context.Background()
	for _, q := range testQueries("ds") {
		a, err := std.Execute(ctx, q, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		b, err := lazy.Execute(ctx, q, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if a.Matched != b.Matched {
			t.Errorf("decode/lazy disagree on %s: %d vs %d", q, a.Matched, b.Matched)
		}
	}
}

func TestJodaImplementsBackend(t *testing.T) {
	docs := corpus(1000, 63)
	e := jodasim.New(jodasim.Options{Threads: 2})
	e.ImportValues("ds", docs)
	n, err := e.CountMatching("ds", nil)
	if err != nil || n != 1000 {
		t.Fatalf("CountMatching(nil) = %d, %v", n, err)
	}
	n, err = e.CountMatching("ds", query.BoolEq{Path: "/active", Value: true})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, d := range docs {
		if (query.BoolEq{Path: "/active", Value: true}).Eval(d) {
			want++
		}
	}
	if n != want {
		t.Errorf("CountMatching = %d, want %d", n, want)
	}
}

func TestEnginesAgreeOnTransforms(t *testing.T) {
	docs := corpus(1500, 64)
	engines := allEngines(t, "ds", docs)
	ctx := context.Background()
	queries := []*query.Query{
		{ID: "t1", Base: "ds",
			Filter: query.FloatCmp{Path: "/score", Op: query.Ge, Value: 20},
			Transform: &query.Transform{Ops: []query.TransformOp{
				{Kind: query.TransformRename, Path: "/city", NewName: "location"},
				{Kind: query.TransformAdd, Path: "/source", Value: jsonval.StringValue("betze")},
			}}},
		{ID: "t2", Base: "ds",
			Transform: &query.Transform{Ops: []query.TransformOp{
				{Kind: query.TransformRemove, Path: "/user/followers"},
			}}},
		{ID: "t3", Base: "ds",
			Filter: query.Exists{Path: "/user"},
			Transform: &query.Transform{Ops: []query.TransformOp{
				{Kind: query.TransformRename, Path: "/user/name", NewName: "alias"},
			}},
			Agg: &query.Aggregation{Func: query.Count, Path: "/user/alias"}},
	}
	for _, q := range queries {
		var reference string
		for i, e := range engines {
			var out bytes.Buffer
			if _, err := e.Execute(ctx, q, &out); err != nil {
				t.Fatalf("%s executing %s: %v", e.Name(), q, err)
			}
			got := canonicalise(t, out.String())
			if i == 0 {
				reference = got
			} else if got != reference {
				t.Errorf("%s transform output differs for %s:\n--- got ---\n%.300s\n--- want ---\n%.300s",
					e.Name(), q, got, reference)
			}
		}
	}
	// Transformed stored datasets must be queryable under the new shape.
	store := &query.Query{ID: "ts", Base: "ds", Store: "renamed",
		Transform: &query.Transform{Ops: []query.TransformOp{
			{Kind: query.TransformRename, Path: "/city", NewName: "location"},
		}}}
	followup := &query.Query{ID: "tf", Base: "renamed", Filter: query.StrEq{Path: "/location", Value: "berlin"}}
	var want int64 = -1
	for _, e := range engines {
		if _, err := e.Execute(ctx, store, io.Discard); err != nil {
			t.Fatalf("%s store: %v", e.Name(), err)
		}
		stats, err := e.Execute(ctx, followup, io.Discard)
		if err != nil {
			t.Fatalf("%s follow-up: %v", e.Name(), err)
		}
		if want == -1 {
			want = stats.Matched
		} else if stats.Matched != want {
			t.Errorf("%s matched %d on transformed store, want %d", e.Name(), stats.Matched, want)
		}
	}
	if want <= 0 {
		t.Fatalf("transformed follow-up matched nothing")
	}
}

func TestEnginesRejectInvalidQueries(t *testing.T) {
	engines := allEngines(t, "ds", corpus(50, 70))
	bad := []*query.Query{
		{ID: "noBase"},
		{ID: "storeAgg", Base: "ds", Store: "out",
			Agg: &query.Aggregation{Func: query.Count, Path: jsonval.RootPath}},
	}
	for _, e := range engines {
		for _, q := range bad {
			if _, err := e.Execute(context.Background(), q, io.Discard); err == nil {
				t.Errorf("%s accepted invalid query %s", e.Name(), q.ID)
			}
		}
	}
}

func TestImportFileErrors(t *testing.T) {
	dir := t.TempDir()
	malformed := filepath.Join(dir, "broken.json")
	if err := os.WriteFile(malformed, []byte("{\"a\":1}\n{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	jq, err := jqsim.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jq.Close()
	engines := []engine.Engine{
		jodasim.New(jodasim.Options{}),
		mongosim.New(mongosim.Options{}),
		pgsim.New(pgsim.Options{}),
	}
	ctx := context.Background()
	for _, e := range engines {
		if _, err := e.ImportFile(ctx, "x", malformed); err == nil {
			t.Errorf("%s imported a malformed file", e.Name())
		}
		if _, err := e.ImportFile(ctx, "x", filepath.Join(dir, "missing.json")); err == nil {
			t.Errorf("%s imported a missing file", e.Name())
		}
		e.Close()
	}
	// jq records the file without parsing (no import phase); the parse
	// error surfaces at execution time instead, as with the real tool.
	if _, err := jq.ImportFile(ctx, "x", malformed); err != nil {
		t.Fatalf("jq import should not parse: %v", err)
	}
	if _, err := jq.Execute(ctx, &query.Query{ID: "q", Base: "x"}, io.Discard); err == nil {
		t.Errorf("jq executed over a malformed file without error")
	}
	if _, err := jq.ImportFile(ctx, "y", filepath.Join(dir, "missing.json")); err == nil {
		t.Errorf("jq accepted a missing file")
	}
}

func TestJodaEvictionFromFile(t *testing.T) {
	docs := corpus(500, 71)
	dir := t.TempDir()
	path := writeDataset(t, dir, "ds", docs)
	e := jodasim.New(jodasim.Options{Evict: true, Threads: 2})
	defer e.Close()
	if _, err := e.ImportFile(context.Background(), "ds", path); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{ID: "q", Base: "ds", Filter: query.Exists{Path: "/user"}}
	first, err := e.Execute(context.Background(), q, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Execute(context.Background(), q, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if first.Matched != second.Matched {
		t.Errorf("eviction changed file-imported results: %d vs %d", first.Matched, second.Matched)
	}
}

// TestShardSkipAccounting pins the pruning stats contract across the fleet:
// Scanned + Skipped always covers the whole dataset, a predicate no shard
// can satisfy is answered without evaluating a single document on the
// zone-mapped engines, and jq — which has no import phase to build zones in —
// never skips anything.
func TestShardSkipAccounting(t *testing.T) {
	docs := corpus(4000, 77)
	n := int64(len(docs))
	// Every /score is below 100, so no zone map can admit this range.
	impossible := query.FloatCmp{Path: "/score", Op: query.Gt, Value: 1000}
	// The /id values are 0..n-1 in import order, so the clustered minimum
	// rules out every shard but the first.
	selective := query.FloatCmp{Path: "/id", Op: query.Lt, Value: 10}
	ctx := context.Background()
	for _, e := range allEngines(t, "sk", docs) {
		imp, err := e.Execute(ctx, &query.Query{ID: "imp", Base: "sk", Filter: impossible}, io.Discard)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if imp.Scanned+imp.Skipped != n {
			t.Errorf("%s: impossible query scanned %d + skipped %d, want dataset %d",
				e.Name(), imp.Scanned, imp.Skipped, n)
		}
		if imp.Matched != 0 {
			t.Errorf("%s: impossible query matched %d documents", e.Name(), imp.Matched)
		}
		sel, err := e.Execute(ctx, &query.Query{ID: "sel", Base: "sk", Filter: selective}, io.Discard)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if sel.Scanned+sel.Skipped != n {
			t.Errorf("%s: selective query scanned %d + skipped %d, want dataset %d",
				e.Name(), sel.Scanned, sel.Skipped, n)
		}
		if sel.Matched != 10 {
			t.Errorf("%s: selective query matched %d, want 10", e.Name(), sel.Matched)
		}
		if e.Name() == "jq" {
			if imp.Skipped != 0 || sel.Skipped != 0 {
				t.Errorf("jq skipped %d/%d documents without any zone maps", imp.Skipped, sel.Skipped)
			}
			continue
		}
		if imp.Skipped != n || imp.Scanned != 0 {
			t.Errorf("%s: impossible query should prune everything, scanned %d skipped %d",
				e.Name(), imp.Scanned, imp.Skipped)
		}
		if sel.Skipped == 0 {
			t.Errorf("%s: selective query on clustered ids pruned nothing", e.Name())
		}
	}
}
