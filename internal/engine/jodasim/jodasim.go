// Package jodasim is the JODA stand-in: a vertically scalable in-memory
// JSON processor. Imported datasets are parsed once and kept as value trees;
// queries run as parallel scans over a configurable worker pool, and every
// query result is cached per composed predicate so follow-up queries of an
// exploration session start from the nearest cached ancestor — the
// delta-tree behaviour the paper credits for JODA's iterative-workload
// performance. An optional eviction mode drops parsed data after each query
// and re-parses from the imported bytes, modelling a memory-constrained
// deployment (Table II's "JODA memory evicted" row).
package jodasim

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/engine/scan"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
	"github.com/joda-explore/betze/internal/shard"
)

// Options configures the engine.
type Options struct {
	// Threads is the scan worker count; 0 means runtime.NumCPU().
	Threads int
	// Evict drops parsed documents after every query, forcing a re-parse
	// from the imported raw bytes on the next one.
	Evict bool
	// DisableCache turns off per-predicate result caching (an ablation
	// knob; real JODA caches).
	DisableCache bool
}

// Engine implements engine.Engine and core.Backend.
type Engine struct {
	opts Options

	mu       sync.Mutex
	base     map[string]*dataset // imported datasets by name
	derived  map[string][]jsonval.Value
	cache    map[string][]jsonval.Value // base name + predicate -> matching docs
	cacheHit int64
}

type dataset struct {
	store *shard.Store // zone-mapped shards; nil while evicted
	raw   []byte       // retained source bytes for eviction mode
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	if opts.Threads <= 0 {
		opts.Threads = runtime.NumCPU()
	}
	return &Engine{
		opts:    opts,
		base:    make(map[string]*dataset),
		derived: make(map[string][]jsonval.Value),
		cache:   make(map[string][]jsonval.Value),
	}
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	if e.opts.Evict {
		return "JODA (evicted)"
	}
	return "JODA"
}

// SetThreads adjusts the worker-pool size (the Fig. 9 sweep).
func (e *Engine) SetThreads(n int) {
	if n > 0 {
		e.opts.Threads = n
	}
}

// CacheHits reports how many queries were served from a cached ancestor.
func (e *Engine) CacheHits() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cacheHit
}

// ImportFile implements engine.Engine: parse once, cut the value trees into
// zone-mapped shards (shard.Build — the one-time zone construction the
// import pays for every later scan to prune against), and keep the raw
// bytes when eviction mode needs them.
func (e *Engine) ImportFile(ctx context.Context, name, path string) (engine.ImportStats, error) {
	start := time.Now()
	var docs []jsonval.Value
	n, bytes, err := engine.ReadFile(ctx, path, func(doc jsonval.Value) error {
		docs = append(docs, doc)
		return nil
	})
	if err != nil {
		err = fmt.Errorf("jodasim: importing %s: %w", path, err)
		engine.ObserveImport(ctx, e.Name(), name, engine.ImportStats{}, err)
		return engine.ImportStats{}, err
	}
	var raw []byte
	if e.opts.Evict {
		for _, d := range docs {
			raw = jsonval.AppendJSON(raw, d)
			raw = append(raw, '\n')
		}
	}
	e.mu.Lock()
	e.base[name] = &dataset{store: shard.Build(docs, shard.DefaultSize), raw: raw}
	e.mu.Unlock()
	stats := engine.ImportStats{Docs: n, Bytes: bytes, StoredBytes: bytes, Duration: time.Since(start)}
	engine.ObserveImport(ctx, e.Name(), name, stats, nil)
	return stats, nil
}

// ImportValues loads an in-memory document slice as a base dataset.
func (e *Engine) ImportValues(name string, docs []jsonval.Value) {
	ds := &dataset{store: shard.Build(docs, shard.DefaultSize)}
	if e.opts.Evict {
		var raw []byte
		for _, d := range docs {
			raw = jsonval.AppendJSON(raw, d)
			raw = append(raw, '\n')
		}
		ds.raw = raw
	}
	e.mu.Lock()
	e.base[name] = ds
	e.mu.Unlock()
}

// resolve finds the sharded store of the query's base dataset together with
// the residual predicate still to evaluate, reusing the deepest cached
// ancestor of the composed predicate chain. Base datasets come back with
// their zone maps; derived datasets and cached results come back as views
// (sharded for the batch kernel but zoneless — they are scanned at most a
// handful of times, so zone construction would not pay for itself). The hit
// flag reports whether any cached result (full or ancestor) served the
// lookup.
func (e *Engine) resolve(ctx context.Context, baseName string, filter query.Predicate) (st *shard.Store, residual query.Predicate, hit bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if docs, ok := e.derived[baseName]; ok {
		return shard.View(docs, shard.DefaultSize), filter, false, nil
	}
	ds, ok := e.base[baseName]
	if !ok {
		return nil, nil, false, engine.UnknownDataset("jodasim", baseName)
	}
	if ds.store == nil {
		// Evicted: re-parse the retained bytes and rebuild the shard store,
		// zone maps included (the re-read cost of a memory-limited
		// deployment covers re-indexing too).
		docs, err := e.parseAll(ctx, ds.raw)
		if err != nil {
			return nil, nil, false, fmt.Errorf("jodasim: re-parsing evicted dataset %s: %w", baseName, err)
		}
		ds.store = shard.Build(docs, shard.DefaultSize)
	}
	if filter == nil || e.opts.DisableCache {
		return ds.store, filter, false, nil
	}
	// Walk the AND-chain from the full predicate towards its prefix,
	// taking the deepest cached subset.
	if docs, ok := e.cache[cacheKey(baseName, filter)]; ok {
		e.cacheHit++
		return shard.View(docs, shard.DefaultSize), nil, true, nil
	}
	pred := filter
	for {
		and, ok := pred.(query.And)
		if !ok {
			break
		}
		if residual == nil {
			residual = and.Right
		} else {
			residual = query.And{Left: and.Right, Right: residual}
		}
		pred = and.Left
		if docs, ok := e.cache[cacheKey(baseName, pred)]; ok {
			e.cacheHit++
			return shard.View(docs, shard.DefaultSize), residual, true, nil
		}
	}
	return ds.store, filter, false, nil
}

func cacheKey(base string, pred query.Predicate) string {
	return base + "\x00" + pred.String()
}

// Execute implements engine.Engine with a parallel filter scan.
func (e *Engine) Execute(ctx context.Context, q *query.Query, sink io.Writer) (engine.ExecStats, error) {
	if err := q.Validate(); err != nil {
		return engine.ExecStats{}, fmt.Errorf("jodasim: %w", err)
	}
	start := time.Now()
	st, residual, hit, err := e.resolve(ctx, q.Base, q.Filter)
	if err != nil {
		engine.ObserveExec(ctx, e.Name(), q, engine.ExecStats{}, err)
		return engine.ExecStats{}, err
	}
	if q.Filter != nil && !e.opts.DisableCache {
		engine.ObserveCache(ctx, e.Name(), q, hit)
	}
	matched, skipped, err := e.scan(ctx, st, residual)
	if err != nil {
		engine.ObserveExec(ctx, e.Name(), q, engine.ExecStats{}, err)
		return engine.ExecStats{}, err
	}
	stats := engine.ExecStats{
		Scanned: int64(st.Len()) - skipped,
		Skipped: skipped,
		Matched: int64(len(matched)),
	}

	if q.Filter != nil && !e.opts.DisableCache && !e.opts.Evict {
		e.mu.Lock()
		e.cache[cacheKey(q.Base, q.Filter)] = matched
		e.mu.Unlock()
	}
	if q.Transform != nil {
		transformed := make([]jsonval.Value, len(matched))
		for i, d := range matched {
			transformed[i] = q.Transform.Apply(d)
		}
		matched = transformed
	}
	if q.Store != "" {
		e.mu.Lock()
		e.derived[q.Store] = matched
		e.mu.Unlock()
	}

	if q.Agg != nil {
		ret, out, err := engine.RunAggregation(q.Agg, matched, sink)
		if err != nil {
			return stats, err
		}
		stats.Returned, stats.OutputBytes = ret, out
	} else {
		var buf []byte
		for i, d := range matched {
			if err := engine.Cancelled(ctx, int64(i)); err != nil {
				return stats, err
			}
			n, err := engine.WriteDoc(sink, &buf, d)
			if err != nil {
				return stats, err
			}
			stats.Returned++
			stats.OutputBytes += n
		}
	}
	if e.opts.Evict {
		e.evictAll()
		engine.ObserveEviction(ctx, e.Name())
	}
	stats.Duration = time.Since(start)
	engine.ObserveExec(ctx, e.Name(), q, stats, nil)
	return stats, nil
}

// scan filters the store on the sharded kernel, compiling the predicate
// once per query. Shards whose zone map the compiled predicate proves empty
// are skipped whole (skipped counts their documents); surviving shards are
// batch-evaluated with one EvalBlock call each, through one per-worker
// Evaluator so the per-document work is a generation bump and a closure
// call with zero cross-worker sharing. The kernel preserves document order.
func (e *Engine) scan(ctx context.Context, st *shard.Store, filter query.Predicate) ([]jsonval.Value, int64, error) {
	if filter == nil {
		return st.Docs(), 0, nil
	}
	compiled := query.Compile(filter)
	// The adaptive pruner probes a deterministic shard prefix up front (so
	// parallel claim order cannot perturb Skipped counts) and drops zone
	// probing for the rest of the scan when the layout is not paying for it.
	pruner := query.NewAdaptivePruner(compiled, st.NumShards(), func(i int) query.Zone {
		return st.Shard(i).Zone
	})
	workers := e.opts.Threads
	if workers < 1 {
		workers = 1
	}
	evals := make([]*query.Evaluator, workers)
	return scan.FilterShards(ctx, e.scanOptions(), st.NumShards(),
		func(i int) ([]jsonval.Value, bool) {
			sh := st.Shard(i)
			return sh.Docs, pruner.CanSkip(i, sh.Zone)
		},
		func(w int, docs []jsonval.Value, keep []bool) (int, error) {
			ev := evals[w]
			if ev == nil {
				ev = compiled.Evaluator()
				evals[w] = ev
			}
			return ev.EvalBlock(docs, keep), nil
		})
}

func (e *Engine) scanOptions() scan.Options {
	return scan.Options{Workers: e.opts.Threads, Engine: e.Name()}
}

// parseAll re-parses newline-delimited bytes on the shared kernel: find the
// document boundaries sequentially, then parse the spans in parallel.
func (e *Engine) parseAll(ctx context.Context, raw []byte) ([]jsonval.Value, error) {
	var spans [][2]int
	off := 0
	for off < len(raw) {
		n, err := jsonval.ScanValue(raw[off:], true)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
		spans = append(spans, [2]int{off, off + n})
		off += n
	}
	return scan.Map(ctx, e.scanOptions(), spans, func(_ int, sp [2]int) (jsonval.Value, error) {
		return jsonval.Parse(trimSpace(raw[sp[0]:sp[1]]))
	})
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\n' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 {
		last := b[len(b)-1]
		if last == ' ' || last == '\n' || last == '\t' || last == '\r' {
			b = b[:len(b)-1]
			continue
		}
		break
	}
	return b
}

func (e *Engine) evictAll() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ds := range e.base {
		if ds.raw != nil {
			ds.store = nil
		}
	}
	e.cache = make(map[string][]jsonval.Value)
}

// CountMatching implements the generator's verification backend
// (core.Backend) on top of the same cached scan machinery.
func (e *Engine) CountMatching(base string, pred query.Predicate) (int64, error) {
	//lint:ignore ctxplumb core.Backend carries no context; resolve and scan read ctx only for cancellation, which generation cannot request
	ctx := context.Background()
	st, residual, _, err := e.resolve(ctx, base, pred)
	if err != nil {
		return 0, err
	}
	matched, _, err := e.scan(ctx, st, residual)
	if err != nil {
		return 0, err
	}
	if pred != nil && !e.opts.DisableCache && !e.opts.Evict {
		e.mu.Lock()
		e.cache[cacheKey(base, pred)] = matched
		e.mu.Unlock()
	}
	return int64(len(matched)), nil
}

// Reset implements engine.Engine.
func (e *Engine) Reset() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.derived = make(map[string][]jsonval.Value)
	e.cache = make(map[string][]jsonval.Value)
	e.cacheHit = 0
	return nil
}

// Close implements engine.Engine.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.base = nil
	e.derived = nil
	e.cache = nil
	return nil
}
