// Package pgsim is the PostgreSQL stand-in: each dataset is a table with a
// single JSONB column. Import converts every document into the JSONB-like
// binary format (sorted keys, offset indexes) via a generic parse — like
// PostgreSQL's json input path — and TOAST-compresses rows above a
// threshold, which makes import markedly more expensive than evaluation
// (the behaviour Fig. 10 of the paper highlights). Query evaluation is
// single-threaded: every leaf of the filter detoasts the row — PostgreSQL
// detoasts per jsonb function call — and then navigates the binary form
// with key binary search. On large deeply nested Twitter documents the
// repeated per-leaf detoasting of individually compressed rows dominates,
// while small NoBench rows stay below the TOAST threshold and evaluate
// fast: the two halves of the paper's MongoDB/PostgreSQL crossover.
//
// Strings containing U+0000 cannot be converted to JSONB; the import fails
// exactly like PostgreSQL's did on the paper's Reddit dataset (Table III).
package pgsim

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/engine/scan"
	"github.com/joda-explore/betze/internal/jsonblite"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/lz"
	"github.com/joda-explore/betze/internal/query"
	"github.com/joda-explore/betze/internal/shard"
)

// DefaultToastThreshold mirrors PostgreSQL's ~2 KB TOAST threshold.
const DefaultToastThreshold = 2000

// Options configures the engine.
type Options struct {
	// ToastThreshold is the row size above which values are compressed;
	// 0 means DefaultToastThreshold.
	ToastThreshold int
	// FullDecode materialises the whole document once per row and
	// evaluates the filter on the value tree, instead of the default
	// per-leaf detoast + binary-searched lookup (ablation knob).
	FullDecode bool
}

// Engine implements engine.Engine.
type Engine struct {
	opts Options

	mu      sync.Mutex
	tables  map[string]*table
	derived map[string]bool
}

type table struct {
	rows []row
	// shards are BRIN-style block ranges: each covers rows[start:end] and
	// carries a zone map summarising those rows, so a scan can rule out a
	// whole range without detoasting a single row in it.
	shards []rowShard
}

type rowShard struct {
	start, end int
	zone       *shard.ZoneMap
}

type row struct {
	data       []byte
	compressed bool
}

// tableBuilder accumulates encoded rows and seals a zone-mapped row shard
// every shard.DefaultSize rows.
type tableBuilder struct {
	tbl   *table
	zones *shard.ZoneBuilder
	start int
}

func newTableBuilder() *tableBuilder {
	return &tableBuilder{tbl: &table{}, zones: shard.NewZoneBuilder()}
}

func (b *tableBuilder) add(doc jsonval.Value, r row) {
	b.tbl.rows = append(b.tbl.rows, r)
	b.zones.Add(doc)
	if len(b.tbl.rows)-b.start >= shard.DefaultSize {
		b.seal()
	}
}

func (b *tableBuilder) seal() {
	if len(b.tbl.rows) == b.start {
		return
	}
	b.tbl.shards = append(b.tbl.shards, rowShard{start: b.start, end: len(b.tbl.rows), zone: b.zones.Finish()})
	b.start = len(b.tbl.rows)
}

func (b *tableBuilder) finish() *table {
	b.seal()
	return b.tbl
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	if opts.ToastThreshold <= 0 {
		opts.ToastThreshold = DefaultToastThreshold
	}
	return &Engine{
		opts:    opts,
		tables:  make(map[string]*table),
		derived: make(map[string]bool),
	}
}

// Name implements engine.Engine.
func (*Engine) Name() string { return "PostgreSQL" }

func (e *Engine) encodeRow(doc jsonval.Value) (row, error) {
	data, err := jsonblite.Encode(nil, doc)
	if err != nil {
		return row{}, err
	}
	if len(data) <= e.opts.ToastThreshold {
		return row{data: data}, nil
	}
	return row{data: lz.Compress(nil, data), compressed: true}, nil
}

// open detoasts the row: a fresh decompression per call, as PostgreSQL's
// pglz pays per jsonb function invocation.
func (r row) open() ([]byte, error) {
	if !r.compressed {
		return r.data, nil
	}
	return lz.Decompress(nil, r.data)
}

// ImportFile implements engine.Engine. Like PostgreSQL's json input, every
// document is first parsed into a generic value tree and then converted to
// the binary JSONB form; this two-stage conversion is what makes the import
// "take multiple times longer than the evaluation of the whole session"
// (the paper's Fig. 10 discussion). A single offending document aborts the
// whole COPY, as in PostgreSQL.
func (e *Engine) ImportFile(ctx context.Context, name, path string) (stats engine.ImportStats, err error) {
	start := time.Now()
	defer func() { engine.ObserveImport(ctx, e.Name(), name, stats, err) }()
	f, err := os.Open(path)
	if err != nil {
		return engine.ImportStats{}, fmt.Errorf("pgsim: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return engine.ImportStats{}, fmt.Errorf("pgsim: %w", err)
	}
	dec := json.NewDecoder(bufio.NewReaderSize(f, 256*1024))
	dec.UseNumber() // numerics stay exact, as PostgreSQL's numeric does
	tb := newTableBuilder()
	var docs int64
	for {
		if err := engine.Cancelled(ctx, docs); err != nil {
			return engine.ImportStats{}, err
		}
		var generic any
		if err := dec.Decode(&generic); err == io.EOF {
			break
		} else if err != nil {
			return engine.ImportStats{}, fmt.Errorf("pgsim: importing %s (row %d): %w", path, docs+1, err)
		}
		doc, err := fromGeneric(generic)
		if err != nil {
			return engine.ImportStats{}, fmt.Errorf("pgsim: importing %s (row %d): %w", path, docs+1, err)
		}
		r, err := e.encodeRow(doc)
		if err != nil {
			return engine.ImportStats{}, fmt.Errorf("pgsim: importing %s (row %d): %w", path, docs+1, err)
		}
		tb.add(doc, r)
		docs++
	}
	tbl := tb.finish()
	e.mu.Lock()
	e.tables[name] = tbl
	e.mu.Unlock()
	var stored int64
	for _, r := range tbl.rows {
		stored += int64(len(r.data))
	}
	return engine.ImportStats{Docs: docs, Bytes: info.Size(), StoredBytes: stored, Duration: time.Since(start)}, nil
}

// fromGeneric converts an encoding/json generic tree into the typed value
// model, keeping the int/float distinction exact via json.Number.
func fromGeneric(v any) (jsonval.Value, error) {
	switch t := v.(type) {
	case nil:
		return jsonval.NullValue(), nil
	case bool:
		return jsonval.BoolValue(t), nil
	case string:
		return jsonval.StringValue(t), nil
	case json.Number:
		s := t.String()
		if !strings.ContainsAny(s, ".eE") {
			if n, err := t.Int64(); err == nil {
				return jsonval.IntValue(n), nil
			}
		}
		f, err := t.Float64()
		if err != nil {
			return jsonval.Value{}, fmt.Errorf("invalid number %q: %w", s, err)
		}
		return jsonval.FloatValue(f), nil
	case []any:
		elems := make([]jsonval.Value, len(t))
		for i, e := range t {
			ev, err := fromGeneric(e)
			if err != nil {
				return jsonval.Value{}, err
			}
			elems[i] = ev
		}
		return jsonval.ArrayValue(elems...), nil
	case map[string]any:
		members := make([]jsonval.Member, 0, len(t))
		for k, e := range t {
			ev, err := fromGeneric(e)
			if err != nil {
				return jsonval.Value{}, err
			}
			members = append(members, jsonval.Member{Key: k, Value: ev})
		}
		return jsonval.ObjectValue(members...), nil
	default:
		return jsonval.Value{}, fmt.Errorf("unsupported generic value %T", v)
	}
}

// ImportValues loads an in-memory document slice as a table.
func (e *Engine) ImportValues(name string, docs []jsonval.Value) error {
	tb := newTableBuilder()
	for i, d := range docs {
		r, err := e.encodeRow(d)
		if err != nil {
			return fmt.Errorf("pgsim: importing %s (row %d): %w", name, i+1, err)
		}
		tb.add(d, r)
	}
	e.mu.Lock()
	e.tables[name] = tb.finish()
	e.mu.Unlock()
	return nil
}

// Execute implements engine.Engine: a sequential scan that evaluates the
// filter per row — by default with one detoast per leaf predicate (the
// jsonb function-call behaviour) and binary-searched path lookups.
func (e *Engine) Execute(ctx context.Context, q *query.Query, sink io.Writer) (stats engine.ExecStats, err error) {
	if err := q.Validate(); err != nil {
		return engine.ExecStats{}, fmt.Errorf("pgsim: %w", err)
	}
	start := time.Now()
	defer func() { engine.ObserveExec(ctx, e.Name(), q, stats, err) }()
	e.mu.Lock()
	tbl, ok := e.tables[q.Base]
	e.mu.Unlock()
	if !ok {
		return engine.ExecStats{}, engine.UnknownDataset("pgsim", q.Base)
	}

	var agg *query.Aggregator
	if q.Agg != nil {
		agg = query.NewAggregator(*q.Agg)
	}
	// The row walk runs on the sequential shard kernel (PostgreSQL's
	// modelled execution is single-threaded), one BRIN-style row range per
	// step: a range whose zone map rules out every row is skipped without
	// detoasting any of it. FullDecode mode evaluates the compiled
	// predicate over materialised rows; the default mode keeps the
	// per-leaf detoast + binary-searched lookups.
	compiled := query.Compile(q.Filter)
	pruner := query.NewAdaptivePruner(compiled, len(tbl.shards), func(i int) query.Zone {
		return tbl.shards[i].zone
	})
	var storeTB *tableBuilder
	if q.Store != "" {
		storeTB = newTableBuilder()
	}
	var outBuf []byte
	if _, err := scan.StreamShards(ctx, scan.Options{Engine: e.Name()}, len(tbl.shards),
		func(i int) bool {
			sh := tbl.shards[i]
			if !pruner.CanSkip(i, sh.zone) {
				return false
			}
			stats.Skipped += int64(sh.end - sh.start)
			return true
		},
		func(i int) (int64, error) {
			sh := tbl.shards[i]
			var walked int64
			for ri := sh.start; ri < sh.end; ri++ {
				r := tbl.rows[ri]
				stats.Scanned++
				walked++
				var match bool
				if e.opts.FullDecode {
					data, derr := r.open()
					if derr != nil {
						return walked, fmt.Errorf("pgsim: detoasting row: %w", derr)
					}
					doc, derr := jsonblite.Decode(data)
					if derr != nil {
						return walked, fmt.Errorf("pgsim: decoding row: %w", derr)
					}
					match = compiled.Eval(doc)
				} else {
					var ferr error
					match, ferr = evalRow(r, q.Filter)
					if ferr != nil {
						return walked, ferr
					}
				}
				if !match {
					continue
				}
				stats.Matched++
				// Producing output (or aggregating) accesses the whole value:
				// one more detoast plus a decode, as returning jsonb does.
				data, derr := r.open()
				if derr != nil {
					return walked, fmt.Errorf("pgsim: detoasting row: %w", derr)
				}
				doc, derr := jsonblite.Decode(data)
				if derr != nil {
					return walked, fmt.Errorf("pgsim: decoding row: %w", derr)
				}
				if q.Transform != nil {
					doc = q.Transform.Apply(doc)
					// The stored/output value is rebuilt, as jsonb_set does.
					r, derr = e.encodeRow(doc)
					if derr != nil {
						return walked, fmt.Errorf("pgsim: transforming row: %w", derr)
					}
				}
				if eerr := e.emit(q, doc, r, storeTB, agg, sink, &outBuf, &stats); eerr != nil {
					return walked, eerr
				}
			}
			return walked, nil
		}); err != nil {
		return stats, err
	}
	if agg != nil {
		var buf []byte
		for _, rowDoc := range agg.Result() {
			n, err := engine.WriteDoc(sink, &buf, rowDoc)
			if err != nil {
				return stats, err
			}
			stats.Returned++
			stats.OutputBytes += n
		}
	}
	if storeTB != nil {
		e.mu.Lock()
		e.tables[q.Store] = storeTB.finish()
		e.derived[q.Store] = true
		e.mu.Unlock()
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// emit handles one matching row: aggregate, store, or output.
func (e *Engine) emit(q *query.Query, doc jsonval.Value, r row, storeTB *tableBuilder, agg *query.Aggregator, sink io.Writer, outBuf *[]byte, stats *engine.ExecStats) error {
	if agg != nil {
		agg.Add(doc)
		return nil
	}
	if storeTB != nil {
		storeTB.add(doc, r)
	}
	n, err := engine.WriteDoc(sink, outBuf, doc)
	if err != nil {
		return err
	}
	stats.Returned++
	stats.OutputBytes += n
	return nil
}

// evalRow evaluates the predicate tree over one row. Each leaf detoasts the
// row anew — PostgreSQL detoasts per jsonb function call, so a composed
// BETZE predicate chain pays the decompression repeatedly on TOASTed rows —
// and then resolves its path with binary search.
func evalRow(r row, p query.Predicate) (bool, error) {
	if p == nil {
		return true, nil
	}
	switch n := p.(type) {
	case query.And:
		l, err := evalRow(r, n.Left)
		if err != nil || !l {
			return false, err
		}
		return evalRow(r, n.Right)
	case query.Or:
		l, err := evalRow(r, n.Left)
		if err != nil || l {
			return l, err
		}
		return evalRow(r, n.Right)
	default:
		data, err := r.open() // per-leaf detoast
		if err != nil {
			return false, fmt.Errorf("pgsim: detoasting row: %w", err)
		}
		path, ok := query.LeafPath(p)
		if !ok {
			doc, err := jsonblite.Decode(data)
			if err != nil {
				return false, err
			}
			return p.Eval(doc), nil
		}
		v, found, err := jsonblite.LookupBinary(data, path)
		if err != nil {
			return false, err
		}
		if !found {
			return false, nil
		}
		// Apply the leaf to the value resolved at its path.
		return evalOnValue(p, v), nil
	}
}

// evalOnValue applies a leaf predicate to the value already resolved at its
// path.
func evalOnValue(p query.Predicate, v jsonval.Value) bool {
	switch n := p.(type) {
	case query.Exists:
		return true
	case query.IsString:
		return v.Kind() == jsonval.String
	case query.IntEq:
		num, ok := v.Number()
		return ok && num == float64(n.Value)
	case query.FloatCmp:
		num, ok := v.Number()
		if !ok {
			return false
		}
		switch n.Op {
		case query.Lt:
			return num < n.Value
		case query.Le:
			return num <= n.Value
		case query.Gt:
			return num > n.Value
		case query.Ge:
			return num >= n.Value
		default:
			return num == n.Value
		}
	case query.StrEq:
		return v.Kind() == jsonval.String && v.Str() == n.Value
	case query.HasPrefix:
		s := ""
		if v.Kind() == jsonval.String {
			s = v.Str()
		}
		return v.Kind() == jsonval.String && len(s) >= len(n.Prefix) && s[:len(n.Prefix)] == n.Prefix
	case query.BoolEq:
		return v.Kind() == jsonval.Bool && v.Bool() == n.Value
	case query.ArrSize:
		if v.Kind() != jsonval.Array {
			return false
		}
		return cmpInt(n.Op, v.Len(), n.Value)
	case query.ObjSize:
		if v.Kind() != jsonval.Object {
			return false
		}
		return cmpInt(n.Op, v.Len(), n.Value)
	default:
		return false
	}
}

func cmpInt(op query.CmpOp, a, b int) bool {
	switch op {
	case query.Lt:
		return a < b
	case query.Le:
		return a <= b
	case query.Gt:
		return a > b
	case query.Ge:
		return a >= b
	case query.Eq:
		return a == b
	default:
		return false
	}
}

// Reset implements engine.Engine.
func (e *Engine) Reset() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for name := range e.derived {
		delete(e.tables, name)
	}
	e.derived = make(map[string]bool)
	return nil
}

// Close implements engine.Engine.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables = nil
	e.derived = nil
	return nil
}
