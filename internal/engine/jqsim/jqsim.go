// Package jqsim is the jq stand-in: a command-line-style stream filter with
// no import phase and no shared state between queries. Every query re-opens
// the dataset file and re-parses every document from text into generic boxed
// value trees (encoding/json into interface{}), mirroring jq's jv heap
// representation — including its use of double-precision floats for every
// number — and serialises its full result. These per-query parse and
// allocation costs are the reason the paper concludes that "using jq to
// explore large sets of JSON files is unfeasible". Stored results become new
// files in the engine's working directory, which is how jq materialises
// datasets.
//
// jqsim is deliberately the unprunable baseline of the engine fleet: with no
// import phase there is nowhere to build zone maps, so every query walks the
// whole file and ExecStats.Skipped stays zero. Comparing its scan counts
// against the sharded engines isolates what zone-map skipping buys.
package jqsim

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/engine/scan"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

// Engine implements engine.Engine.
type Engine struct {
	workdir string
	// ownsDir marks a workdir the engine created itself and removes
	// wholesale on Close.
	ownsDir bool

	mu      sync.Mutex
	files   map[string]string // dataset name -> file path
	derived map[string]bool
}

// New returns an engine materialising derived datasets under workdir; an
// empty workdir uses a fresh temporary directory removed on Close. Two
// engines must not share a workdir — their derived datasets would collide
// on file names; give each its own directory (see NewTempIn).
func New(workdir string) (*Engine, error) {
	e := &Engine{
		workdir: workdir,
		files:   make(map[string]string),
		derived: make(map[string]bool),
	}
	if workdir == "" {
		dir, err := os.MkdirTemp("", "jqsim-*")
		if err != nil {
			return nil, fmt.Errorf("jqsim: %w", err)
		}
		e.workdir = dir
		e.ownsDir = true
	}
	return e, nil
}

// NewTempIn returns an engine whose workdir is a fresh subdirectory of
// parent, removed on Close — the per-session isolation the harness uses so
// consecutive or concurrent sessions cannot collide on store-file names.
func NewTempIn(parent string) (*Engine, error) {
	dir, err := os.MkdirTemp(parent, "jqsim-*")
	if err != nil {
		return nil, fmt.Errorf("jqsim: %w", err)
	}
	e, err := New(dir)
	if err != nil {
		return nil, err
	}
	e.ownsDir = true
	return e, nil
}

// Name implements engine.Engine.
func (*Engine) Name() string { return "jq" }

// ImportFile implements engine.Engine. jq has no import: the engine only
// records where the file lives (constant time, like the paper's setup where
// jq "operates directly on the input data files").
func (e *Engine) ImportFile(ctx context.Context, name, path string) (engine.ImportStats, error) {
	start := time.Now()
	info, err := os.Stat(path)
	if err != nil {
		err = fmt.Errorf("jqsim: %w", err)
		engine.ObserveImport(ctx, e.Name(), name, engine.ImportStats{}, err)
		return engine.ImportStats{}, err
	}
	e.mu.Lock()
	e.files[name] = path
	e.mu.Unlock()
	stats := engine.ImportStats{Bytes: info.Size(), StoredBytes: info.Size(), Duration: time.Since(start)}
	engine.ObserveImport(ctx, e.Name(), name, stats, nil)
	return stats, nil
}

// Execute implements engine.Engine: stream, parse into boxed values,
// filter, print.
func (e *Engine) Execute(ctx context.Context, q *query.Query, sink io.Writer) (stats engine.ExecStats, err error) {
	if err := q.Validate(); err != nil {
		return engine.ExecStats{}, fmt.Errorf("jqsim: %w", err)
	}
	start := time.Now()
	defer func() { engine.ObserveExec(ctx, e.Name(), q, stats, err) }()
	e.mu.Lock()
	path, ok := e.files[q.Base]
	e.mu.Unlock()
	if !ok {
		return engine.ExecStats{}, engine.UnknownDataset("jqsim", q.Base)
	}
	f, err := os.Open(path)
	if err != nil {
		return engine.ExecStats{}, fmt.Errorf("jqsim: %w", err)
	}
	defer f.Close()

	var agg *query.Aggregator
	if q.Agg != nil {
		agg = query.NewAggregator(*q.Agg)
	}
	var storeFile *os.File
	var storeWriter *bufio.Writer
	if q.Store != "" {
		storePath := filepath.Join(e.workdir, q.Store+".json")
		storeFile, err = os.Create(storePath)
		if err != nil {
			return stats, fmt.Errorf("jqsim: creating store file: %w", err)
		}
		storeWriter = bufio.NewWriter(storeFile)
		defer storeFile.Close()
		e.mu.Lock()
		e.files[q.Store] = storePath
		e.derived[q.Store] = true
		e.mu.Unlock()
	}

	// The aggregation pipelines of the paper run TWO jq processes: the
	// filter pass prints its matches, and a second slurping instance
	// re-parses that stream to reduce it. pipeBuf models the pipe between
	// them — matched documents are serialised here and parsed again below,
	// which is why jq "benefits from this the least" (Table III).
	var pipeBuf []byte

	// The decode loop runs on the sequential scan kernel as an unbounded
	// stream: the document count is unknown until the decoder hits EOF.
	dec := json.NewDecoder(bufio.NewReaderSize(f, 256*1024))
	if _, err := scan.Stream(ctx, scan.Options{Engine: e.Name()}, -1, func(int) (bool, error) {
		var doc any
		if derr := dec.Decode(&doc); derr == io.EOF {
			return false, nil
		} else if derr != nil {
			return false, fmt.Errorf("jqsim: parsing %s: %w", path, derr)
		}
		stats.Scanned++
		if !evalAny(doc, q.Filter) {
			return true, nil
		}
		stats.Matched++
		if q.Transform != nil {
			// jq pipelines restructure the boxed value; model the cost by
			// rebuilding the tree around the edit.
			doc = fromValue(q.Transform.Apply(toValue(doc)))
		}
		if agg != nil {
			out, merr := json.Marshal(doc)
			if merr != nil {
				return false, fmt.Errorf("jqsim: %w", merr)
			}
			pipeBuf = append(pipeBuf, out...)
			pipeBuf = append(pipeBuf, '\n')
			return true, nil
		}
		// jq always prints its output (the paper: "jq queries would
		// always output the whole content over stdout").
		out, merr := json.Marshal(doc)
		if merr != nil {
			return false, fmt.Errorf("jqsim: %w", merr)
		}
		out = append(out, '\n')
		n, werr := sink.Write(out)
		if werr != nil {
			return false, werr
		}
		stats.Returned++
		stats.OutputBytes += int64(n)
		if storeWriter != nil {
			if _, werr := storeWriter.Write(out); werr != nil {
				return false, werr
			}
		}
		return true, nil
	}); err != nil {
		return stats, err
	}
	if agg != nil {
		// Second jq instance: slurp the filtered stream and reduce it.
		slurp := json.NewDecoder(bytes.NewReader(pipeBuf))
		for {
			var doc any
			if err := slurp.Decode(&doc); err == io.EOF {
				break
			} else if err != nil {
				return stats, fmt.Errorf("jqsim: re-parsing pipe: %w", err)
			}
			addAny(agg, doc, q.Agg)
		}
		var buf []byte
		for _, row := range agg.Result() {
			n, err := engine.WriteDoc(sink, &buf, row)
			if err != nil {
				return stats, err
			}
			stats.Returned++
			stats.OutputBytes += n
		}
	}
	if storeWriter != nil {
		if err := storeWriter.Flush(); err != nil {
			return stats, err
		}
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// lookupAny resolves a path inside a boxed document.
func lookupAny(doc any, path jsonval.Path) (any, bool) {
	cur := doc
	for _, seg := range path.Segments() {
		obj, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = obj[seg]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// evalAny evaluates the predicate tree over boxed values. Numbers are
// float64 throughout, like jq's doubles.
func evalAny(doc any, p query.Predicate) bool {
	if p == nil {
		return true
	}
	switch n := p.(type) {
	case query.And:
		return evalAny(doc, n.Left) && evalAny(doc, n.Right)
	case query.Or:
		return evalAny(doc, n.Left) || evalAny(doc, n.Right)
	case query.Exists:
		_, ok := lookupAny(doc, n.Path)
		return ok
	case query.IsString:
		v, ok := lookupAny(doc, n.Path)
		if !ok {
			return false
		}
		_, isStr := v.(string)
		return isStr
	case query.IntEq:
		v, ok := lookupAny(doc, n.Path)
		if !ok {
			return false
		}
		f, isNum := v.(float64)
		return isNum && f == float64(n.Value)
	case query.FloatCmp:
		v, ok := lookupAny(doc, n.Path)
		if !ok {
			return false
		}
		f, isNum := v.(float64)
		if !isNum {
			return false
		}
		switch n.Op {
		case query.Lt:
			return f < n.Value
		case query.Le:
			return f <= n.Value
		case query.Gt:
			return f > n.Value
		case query.Ge:
			return f >= n.Value
		default:
			return f == n.Value
		}
	case query.StrEq:
		v, ok := lookupAny(doc, n.Path)
		if !ok {
			return false
		}
		s, isStr := v.(string)
		return isStr && s == n.Value
	case query.HasPrefix:
		v, ok := lookupAny(doc, n.Path)
		if !ok {
			return false
		}
		s, isStr := v.(string)
		return isStr && strings.HasPrefix(s, n.Prefix)
	case query.BoolEq:
		v, ok := lookupAny(doc, n.Path)
		if !ok {
			return false
		}
		b, isBool := v.(bool)
		return isBool && b == n.Value
	case query.ArrSize:
		v, ok := lookupAny(doc, n.Path)
		if !ok {
			return false
		}
		arr, isArr := v.([]any)
		return isArr && cmpInt(n.Op, len(arr), n.Value)
	case query.ObjSize:
		v, ok := lookupAny(doc, n.Path)
		if !ok {
			return false
		}
		obj, isObj := v.(map[string]any)
		return isObj && cmpInt(n.Op, len(obj), n.Value)
	default:
		return false
	}
}

func cmpInt(op query.CmpOp, a, b int) bool {
	switch op {
	case query.Lt:
		return a < b
	case query.Le:
		return a <= b
	case query.Gt:
		return a > b
	case query.Ge:
		return a >= b
	case query.Eq:
		return a == b
	default:
		return false
	}
}

// addAny folds a boxed document into the aggregation, converting only the
// referenced attributes.
func addAny(agg *query.Aggregator, doc any, spec *query.Aggregation) {
	v, vok := lookupAny(doc, spec.Path)
	var g any
	var gok bool
	if spec.Grouped {
		g, gok = lookupAny(doc, spec.GroupBy)
	}
	agg.AddValues(toValue(v), vok, toValue(g), gok)
}

// toValue converts a boxed value into the typed model for aggregation.
// Numbers stay floats — jq computes in doubles.
func toValue(v any) jsonval.Value {
	switch t := v.(type) {
	case nil:
		return jsonval.NullValue()
	case bool:
		return jsonval.BoolValue(t)
	case float64:
		return jsonval.FloatValue(t)
	case string:
		return jsonval.StringValue(t)
	case []any:
		elems := make([]jsonval.Value, len(t))
		for i, e := range t {
			elems[i] = toValue(e)
		}
		return jsonval.ArrayValue(elems...)
	case map[string]any:
		members := make([]jsonval.Member, 0, len(t))
		for k, e := range t {
			members = append(members, jsonval.Member{Key: k, Value: toValue(e)})
		}
		return jsonval.ObjectValue(members...)
	default:
		return jsonval.NullValue()
	}
}

// fromValue converts a typed value back into the boxed representation.
func fromValue(v jsonval.Value) any {
	switch v.Kind() {
	case jsonval.Null:
		return nil
	case jsonval.Bool:
		return v.Bool()
	case jsonval.Int:
		return float64(v.Int()) // jq numbers are doubles
	case jsonval.Float:
		return v.Float()
	case jsonval.String:
		return v.Str()
	case jsonval.Array:
		out := make([]any, v.Len())
		for i, e := range v.Array() {
			out[i] = fromValue(e)
		}
		return out
	case jsonval.Object:
		out := make(map[string]any, v.Len())
		for _, m := range v.Members() {
			out[m.Key] = fromValue(m.Value)
		}
		return out
	default:
		return nil
	}
}

// Reset implements engine.Engine: derived files are removed.
func (e *Engine) Reset() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for name := range e.derived {
		os.Remove(e.files[name])
		delete(e.files, name)
	}
	e.derived = make(map[string]bool)
	return nil
}

// Close implements engine.Engine. An owned workdir (New("") or NewTempIn)
// is removed entirely.
func (e *Engine) Close() error {
	err := e.Reset()
	e.mu.Lock()
	e.files = nil
	e.mu.Unlock()
	if e.ownsDir {
		if rmErr := os.RemoveAll(e.workdir); err == nil {
			err = rmErr
		}
	}
	return err
}
