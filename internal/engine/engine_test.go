package engine

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

func TestReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.json")
	if err := os.WriteFile(path, []byte("{\"a\":1}\n{\"a\":2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var seen []int64
	docs, bytes, err := ReadFile(context.Background(), path, func(doc jsonval.Value) error {
		v, _ := doc.Field("a")
		seen = append(seen, v.Int())
		return nil
	})
	if err != nil || docs != 2 || bytes != 16 {
		t.Fatalf("ReadFile = %d docs, %d bytes, %v", docs, bytes, err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("callback saw %v", seen)
	}
	if _, _, err := ReadFile(context.Background(), filepath.Join(t.TempDir(), "nope"), nil); err == nil {
		t.Errorf("missing file accepted")
	}
}

func TestReadFileCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*checkEvery; i++ {
		f.WriteString("{\"a\":1}\n")
	}
	f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ReadFile(ctx, path, func(jsonval.Value) error { return nil }); err == nil {
		t.Errorf("cancelled read completed")
	}
}

func TestWriteDoc(t *testing.T) {
	var buf []byte
	var sink bytes.Buffer
	n, err := WriteDoc(&sink, &buf, jsonval.ObjectValue(jsonval.Member{Key: "a", Value: jsonval.IntValue(1)}))
	if err != nil || n != 8 {
		t.Fatalf("WriteDoc = %d, %v", n, err)
	}
	if sink.String() != "{\"a\":1}\n" {
		t.Errorf("sink = %q", sink.String())
	}
}

func TestRunAggregation(t *testing.T) {
	docs := []jsonval.Value{
		jsonval.ObjectValue(jsonval.Member{Key: "n", Value: jsonval.IntValue(2)}),
		jsonval.ObjectValue(jsonval.Member{Key: "n", Value: jsonval.IntValue(3)}),
	}
	var sink bytes.Buffer
	returned, outBytes, err := RunAggregation(&query.Aggregation{Func: query.Sum, Path: "/n"}, docs, &sink)
	if err != nil || returned != 1 || outBytes == 0 {
		t.Fatalf("RunAggregation = %d, %d, %v", returned, outBytes, err)
	}
	if sink.String() != "{\"sum\":5}\n" {
		t.Errorf("sink = %q", sink.String())
	}
}

func TestUnknownDatasetError(t *testing.T) {
	err := UnknownDataset("x", "ghost")
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("ghost")) {
		t.Errorf("error = %v", err)
	}
}
