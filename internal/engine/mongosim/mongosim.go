// Package mongosim is the MongoDB stand-in: documents are converted to a
// BSON-like binary format at import and stored in flate-compressed blocks,
// mirroring WiredTiger's default block compression. Query evaluation is
// single-threaded and navigates the binary documents lazily along the
// queried paths without materialising them — the access pattern that keeps
// MongoDB competitive on large nested documents (Twitter) while the per-
// document block-decompression overhead dominates on many small shallow
// ones (NoBench), reproducing the paper's MongoDB/PostgreSQL crossover.
package mongosim

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/joda-explore/betze/internal/bsonlite"
	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/engine/scan"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/lz"
	"github.com/joda-explore/betze/internal/query"
	"github.com/joda-explore/betze/internal/shard"
)

// DefaultBlockSize is the uncompressed target size of a storage block.
const DefaultBlockSize = 64 * 1024

// Options configures the engine.
type Options struct {
	// BlockSize is the uncompressed block target in bytes; 0 means
	// DefaultBlockSize.
	BlockSize int
	// DisableCompression stores blocks uncompressed (ablation knob).
	DisableCompression bool
	// FullDecode materialises every document instead of lazy path walks
	// (ablation knob).
	FullDecode bool
}

// Engine implements engine.Engine.
type Engine struct {
	opts Options

	mu          sync.Mutex
	collections map[string]*collection
	derivedKeys map[string]bool
}

// collection stores BSON documents in compressed blocks.
type collection struct {
	blocks []block
	docs   int64
}

type block struct {
	data       []byte // compressed unless the engine disables compression
	compressed bool
	docCount   int
	// zone summarises the block's documents for shard pruning: a query
	// whose compiled predicate proves the block empty skips it without
	// even decompressing the data. Built at import time by the block
	// writer, so it rides along with the encode pass.
	zone *shard.ZoneMap
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	return &Engine{
		opts:        opts,
		collections: make(map[string]*collection),
		derivedKeys: make(map[string]bool),
	}
}

// Name implements engine.Engine.
func (*Engine) Name() string { return "MongoDB" }

// blockWriter accumulates BSON documents and seals blocks at the target
// size, folding each document into the pending block's zone map as it goes.
type blockWriter struct {
	opts  Options
	coll  *collection
	zones *shard.ZoneBuilder
	buf   []byte
	n     int
}

func newBlockWriter(opts Options, coll *collection) *blockWriter {
	return &blockWriter{opts: opts, coll: coll, zones: shard.NewZoneBuilder()}
}

func (w *blockWriter) add(doc jsonval.Value) {
	w.buf = bsonlite.Encode(w.buf, doc)
	w.zones.Add(doc)
	w.n++
	w.coll.docs++
	if len(w.buf) >= w.opts.BlockSize {
		w.seal()
	}
}

func (w *blockWriter) seal() {
	if w.n == 0 {
		return
	}
	b := block{docCount: w.n, zone: w.zones.Finish()}
	if w.opts.DisableCompression {
		b.data = append([]byte(nil), w.buf...)
	} else {
		b.data = lz.Compress(nil, w.buf)
		b.compressed = true
	}
	w.coll.blocks = append(w.coll.blocks, b)
	w.buf = w.buf[:0]
	w.n = 0
}

// ImportFile implements engine.Engine.
func (e *Engine) ImportFile(ctx context.Context, name, path string) (engine.ImportStats, error) {
	start := time.Now()
	coll := &collection{}
	w := newBlockWriter(e.opts, coll)
	docs, rawBytes, err := engine.ReadFile(ctx, path, func(doc jsonval.Value) error {
		w.add(doc)
		return nil
	})
	if err != nil {
		err = fmt.Errorf("mongosim: importing %s: %w", path, err)
		engine.ObserveImport(ctx, e.Name(), name, engine.ImportStats{}, err)
		return engine.ImportStats{}, err
	}
	w.seal()
	e.mu.Lock()
	e.collections[name] = coll
	e.mu.Unlock()
	var stored int64
	for _, b := range coll.blocks {
		stored += int64(len(b.data))
	}
	stats := engine.ImportStats{Docs: docs, Bytes: rawBytes, StoredBytes: stored, Duration: time.Since(start)}
	engine.ObserveImport(ctx, e.Name(), name, stats, nil)
	return stats, nil
}

// ImportValues loads an in-memory document slice as a collection.
func (e *Engine) ImportValues(name string, docs []jsonval.Value) {
	coll := &collection{}
	w := newBlockWriter(e.opts, coll)
	for _, d := range docs {
		w.add(d)
	}
	w.seal()
	e.mu.Lock()
	e.collections[name] = coll
	e.mu.Unlock()
}

// open restores a block's BSON byte stream, decompressing per access as
// the storage engine does per block read.
func (b block) open() ([]byte, error) {
	if !b.compressed {
		return b.data, nil
	}
	return lz.Decompress(nil, b.data)
}

// Execute implements engine.Engine: a single-threaded block scan with lazy
// per-leaf path navigation.
func (e *Engine) Execute(ctx context.Context, q *query.Query, sink io.Writer) (stats engine.ExecStats, err error) {
	if err := q.Validate(); err != nil {
		return engine.ExecStats{}, fmt.Errorf("mongosim: %w", err)
	}
	start := time.Now()
	defer func() { engine.ObserveExec(ctx, e.Name(), q, stats, err) }()
	e.mu.Lock()
	coll, ok := e.collections[q.Base]
	e.mu.Unlock()
	if !ok {
		return engine.ExecStats{}, engine.UnknownDataset("mongosim", q.Base)
	}

	var agg *query.Aggregator
	if q.Agg != nil {
		agg = query.NewAggregator(*q.Agg)
	}
	var storeWriter *blockWriter
	var storeColl *collection
	if q.Store != "" {
		storeColl = &collection{}
		storeWriter = newBlockWriter(e.opts, storeColl)
	}

	// The walk runs on the sequential shard kernel (MongoDB's modelled
	// execution is single-threaded), one block per step. A block whose zone
	// map rules out every document is skipped without being decompressed —
	// the pruning win here is the whole flate inflate, not just the per-
	// document predicate calls. FullDecode mode evaluates the compiled
	// predicate over materialised documents; the default mode keeps the
	// lazy per-leaf walks over raw BSON.
	compiled := query.Compile(q.Filter)
	pruner := query.NewAdaptivePruner(compiled, len(coll.blocks), func(i int) query.Zone {
		return coll.blocks[i].zone
	})
	var outBuf []byte
	if _, err := scan.StreamShards(ctx, scan.Options{Engine: e.Name()}, len(coll.blocks),
		func(i int) bool {
			if !pruner.CanSkip(i, coll.blocks[i].zone) {
				return false
			}
			stats.Skipped += int64(coll.blocks[i].docCount)
			return true
		},
		func(i int) (int64, error) {
			raw, oerr := coll.blocks[i].open()
			if oerr != nil {
				return 0, fmt.Errorf("mongosim: opening block: %w", oerr)
			}
			var walked int64
			off := 0
			for d := 0; d < coll.blocks[i].docCount; d++ {
				docLen, derr := docLength(raw[off:])
				if derr != nil {
					return walked, derr
				}
				doc := raw[off : off+docLen]
				off += docLen
				stats.Scanned++
				walked++
				var match bool
				if e.opts.FullDecode {
					v, verr := bsonlite.Decode(doc)
					if verr != nil {
						return walked, fmt.Errorf("mongosim: decoding document: %w", verr)
					}
					match = compiled.Eval(v)
				} else {
					var ferr error
					match, ferr = evalFilter(doc, q.Filter)
					if ferr != nil {
						return walked, ferr
					}
				}
				if !match {
					continue
				}
				stats.Matched++
				switch {
				case agg != nil && q.Transform == nil:
					if aerr := addLazy(agg, doc, q.Agg); aerr != nil {
						return walked, aerr
					}
				case agg != nil:
					// Transform stages force materialisation, as $set/$unset
					// pipelines do.
					v, merr := e.materialise(doc, q)
					if merr != nil {
						return walked, merr
					}
					agg.Add(q.ApplyTransform(v))
				default:
					v, merr := e.materialise(doc, q)
					if merr != nil {
						return walked, merr
					}
					v = q.ApplyTransform(v)
					if storeWriter != nil {
						storeWriter.add(v)
					}
					n, werr := engine.WriteDoc(sink, &outBuf, v)
					if werr != nil {
						return walked, werr
					}
					stats.Returned++
					stats.OutputBytes += n
				}
			}
			return walked, nil
		}); err != nil {
		return stats, err
	}
	if agg != nil {
		var buf []byte
		for _, row := range agg.Result() {
			n, err := engine.WriteDoc(sink, &buf, row)
			if err != nil {
				return stats, err
			}
			stats.Returned++
			stats.OutputBytes += n
		}
	}
	if storeWriter != nil {
		storeWriter.seal()
		e.mu.Lock()
		e.collections[q.Store] = storeColl
		e.derivedKeys[q.Store] = true
		e.mu.Unlock()
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// materialise decodes a full document (cursor output or store path).
func (e *Engine) materialise(doc []byte, _ *query.Query) (jsonval.Value, error) {
	v, err := bsonlite.Decode(doc)
	if err != nil {
		return jsonval.Value{}, fmt.Errorf("mongosim: decoding document: %w", err)
	}
	return v, nil
}

// addLazy folds a matching raw document into the aggregation, materialising
// only the referenced attributes (the $group projection path).
func addLazy(agg *query.Aggregator, doc []byte, spec *query.Aggregation) error {
	var v jsonval.Value
	var vok bool
	if raw, ok, err := bsonlite.Lookup(doc, spec.Path); err != nil {
		return err
	} else if ok {
		if spec.Func == query.Count {
			// COUNT only needs existence, not the value.
			vok = true
		} else {
			val, err := raw.Value()
			if err != nil {
				return err
			}
			v, vok = val, true
		}
	}
	var g jsonval.Value
	var gok bool
	if spec.Grouped {
		if raw, ok, err := bsonlite.Lookup(doc, spec.GroupBy); err != nil {
			return err
		} else if ok {
			val, err := raw.Value()
			if err != nil {
				return err
			}
			g, gok = val, true
		}
	}
	agg.AddValues(v, vok, g, gok)
	return nil
}

// docLength reads the header length of the BSON document at the front of
// raw.
func docLength(raw []byte) (int, error) {
	if len(raw) < 5 {
		return 0, fmt.Errorf("mongosim: truncated document header")
	}
	n := int(uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24)
	if n < 5 || n > len(raw) {
		return 0, fmt.Errorf("mongosim: document length %d out of bounds", n)
	}
	return n, nil
}

// evalFilter evaluates the predicate tree over the raw BSON document with
// per-leaf lazy path lookups.
func evalFilter(doc []byte, p query.Predicate) (bool, error) {
	if p == nil {
		return true, nil
	}
	switch n := p.(type) {
	case query.And:
		l, err := evalFilter(doc, n.Left)
		if err != nil || !l {
			return false, err
		}
		return evalFilter(doc, n.Right)
	case query.Or:
		l, err := evalFilter(doc, n.Left)
		if err != nil || l {
			return l, err
		}
		return evalFilter(doc, n.Right)
	case query.Exists:
		_, ok, err := bsonlite.Lookup(doc, n.Path)
		return ok, err
	case query.IsString:
		raw, ok, err := bsonlite.Lookup(doc, n.Path)
		return ok && err == nil && raw.Kind() == jsonval.String, err
	case query.IntEq:
		raw, ok, err := bsonlite.Lookup(doc, n.Path)
		if err != nil || !ok {
			return false, err
		}
		num, isNum := raw.Number()
		return isNum && num == float64(n.Value), nil
	case query.FloatCmp:
		raw, ok, err := bsonlite.Lookup(doc, n.Path)
		if err != nil || !ok {
			return false, err
		}
		num, isNum := raw.Number()
		return isNum && cmpHolds(n.Op, num, n.Value), nil
	case query.StrEq:
		raw, ok, err := bsonlite.Lookup(doc, n.Path)
		if err != nil || !ok {
			return false, err
		}
		s, isStr := raw.Str()
		return isStr && s == n.Value, nil
	case query.HasPrefix:
		raw, ok, err := bsonlite.Lookup(doc, n.Path)
		if err != nil || !ok {
			return false, err
		}
		s, isStr := raw.Str()
		return isStr && len(s) >= len(n.Prefix) && s[:len(n.Prefix)] == n.Prefix, nil
	case query.BoolEq:
		raw, ok, err := bsonlite.Lookup(doc, n.Path)
		if err != nil || !ok {
			return false, err
		}
		b, isBool := raw.Bool()
		return isBool && b == n.Value, nil
	case query.ArrSize:
		raw, ok, err := bsonlite.Lookup(doc, n.Path)
		if err != nil || !ok || raw.Kind() != jsonval.Array {
			return false, err
		}
		l, lok := raw.Len()
		return lok && cmpHoldsInt(n.Op, l, n.Value), nil
	case query.ObjSize:
		raw, ok, err := bsonlite.Lookup(doc, n.Path)
		if err != nil || !ok || raw.Kind() != jsonval.Object {
			return false, err
		}
		l, lok := raw.Len()
		return lok && cmpHoldsInt(n.Op, l, n.Value), nil
	default:
		// Unknown node types fall back to materialised evaluation.
		v, err := bsonlite.Decode(doc)
		if err != nil {
			return false, err
		}
		return p.Eval(v), nil
	}
}

func cmpHolds(op query.CmpOp, a, b float64) bool {
	switch op {
	case query.Lt:
		return a < b
	case query.Le:
		return a <= b
	case query.Gt:
		return a > b
	case query.Ge:
		return a >= b
	case query.Eq:
		return a == b
	default:
		return false
	}
}

func cmpHoldsInt(op query.CmpOp, a, b int) bool {
	return cmpHolds(op, float64(a), float64(b))
}

// Reset implements engine.Engine.
func (e *Engine) Reset() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for name := range e.derivedKeys {
		delete(e.collections, name)
	}
	e.derivedKeys = make(map[string]bool)
	return nil
}

// Close implements engine.Engine.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.collections = nil
	e.derivedKeys = nil
	return nil
}
