package engine_test

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/faultsim"
	"github.com/joda-explore/betze/internal/query"
)

// cancelAfterWriter cancels a context after the first result document is
// written, so the engine is guaranteed to observe a dead context mid-scan.
type cancelAfterWriter struct {
	cancel context.CancelFunc
	writes int
}

func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes == 1 {
		w.cancel()
	}
	return len(p), nil
}

// TestEnginesCancelMidScan cancels the context after the first returned
// document: every sim must stop scanning and propagate the cancellation
// instead of finishing the full pass.
func TestEnginesCancelMidScan(t *testing.T) {
	// Well over the engines' cancellation-check stride, so an engine that
	// ignores the context would visibly scan on.
	docs := corpus(6000, 60)
	engines := allEngines(t, "ds", docs)
	for _, e := range engines {
		ctx, cancel := context.WithCancel(context.Background())
		sink := &cancelAfterWriter{cancel: cancel}
		_, err := e.Execute(ctx, &query.Query{ID: "q1", Base: "ds"}, sink)
		cancel()
		if err == nil {
			t.Errorf("%s completed a scan under a cancelled context", e.Name())
			continue
		}
		// Parallel engines may still tally in-flight partitions, so only
		// the error contract is asserted, not a scan-count bound.
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s returned %v, want context.Canceled", e.Name(), err)
		}
	}
}

// TestEnginesCancelDuringInjectedLatency uses faultsim's latency injection
// to pin every sim inside a spike far longer than the deadline: the wrapped
// engine must surface the deadline promptly, for all four sims.
func TestEnginesCancelDuringInjectedLatency(t *testing.T) {
	docs := corpus(50, 61)
	for _, inner := range allEngines(t, "ds", docs) {
		e := faultsim.Wrap(inner, faultsim.Options{Seed: 1, LatencyRate: 1, Latency: time.Minute})
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		start := time.Now()
		_, err := e.Execute(ctx, &query.Query{ID: "q1", Base: "ds"}, io.Discard)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s returned %v, want context.DeadlineExceeded", inner.Name(), err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Errorf("%s sat out the full latency spike (%v)", inner.Name(), elapsed)
		}
	}
}

// TestEnginesUnknownDatasetTable is the table-driven error-contract check:
// a fresh engine with nothing imported and an engine with data imported
// must both wrap engine.ErrUnknownDataset for a ghost dataset, with the
// store-query variant included.
func TestEnginesUnknownDatasetTable(t *testing.T) {
	engines := allEngines(t, "ds", corpus(20, 62))
	cases := []struct {
		label string
		q     *query.Query
	}{
		{"plain read", &query.Query{ID: "q1", Base: "ghost"}},
		{"store from ghost", &query.Query{ID: "q2", Base: "ghost", Store: "out"}},
	}
	for _, e := range engines {
		for _, c := range cases {
			_, err := e.Execute(context.Background(), c.q, io.Discard)
			if !errors.Is(err, engine.ErrUnknownDataset) {
				t.Errorf("%s %s: error %v does not wrap ErrUnknownDataset", e.Name(), c.label, err)
			}
		}
	}
}
