package lint_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/joda-explore/betze/internal/lint"
)

// TestSuppression checks the //lint:ignore machinery over the suppress
// fixture: same-line and line-above suppressions drop their findings, an
// unsuppressed violation survives, and a reason-less ignore is reported as
// malformed while suppressing nothing.
func TestSuppression(t *testing.T) {
	diags := runFixture(t, lint.NewDeterminism(), "suppress")

	type want struct {
		analyzer string
		line     int
	}
	wants := []want{
		{"determinism", 21}, // Unsuppressed()
		{"lint", 27},        // the malformed ignore comment itself
		{"determinism", 28}, // the finding the malformed ignore fails to cover
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%s", len(diags), len(wants), render(diags))
	}
	for i, w := range wants {
		if diags[i].Analyzer != w.analyzer || diags[i].Line != w.line {
			t.Errorf("finding %d = %s:%d (%s), want line %d (%s)",
				i, diags[i].File, diags[i].Line, diags[i].Analyzer, w.line, w.analyzer)
		}
	}
	for _, d := range diags {
		if d.Analyzer == "lint" && !strings.Contains(d.Message, "malformed") {
			t.Errorf("lint finding should flag the malformed ignore, got: %s", d.Message)
		}
	}
}

// TestIgnoreAllMatchesAnyAnalyzer checks the "all" wildcard via a synthetic
// in-memory check: the suppress fixture's valid ignores name "determinism",
// so running a different analyzer must NOT be suppressed by them — while
// "all" would be. The fixture has no ctxplumb findings, so this only
// asserts the determinism ignores don't leak across analyzers.
func TestIgnoreDoesNotLeakAcrossAnalyzers(t *testing.T) {
	diags := runFixture(t, lint.NewCtxplumb(""), "suppress")
	for _, d := range diags {
		if d.Analyzer == "ctxplumb" {
			t.Errorf("unexpected ctxplumb finding in suppress fixture: %s", d)
		}
	}
}

// TestRunStable checks that two runs over the same fixture produce
// byte-identical text and JSON reports — the property CI diffing rests on.
func TestRunStable(t *testing.T) {
	render := func() (string, string) {
		diags := runFixture(t, lint.NewDeterminism(), "determinism/bad")
		var text, js bytes.Buffer
		if err := lint.WriteText(&text, diags); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if err := lint.WriteJSON(&js, diags); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return text.String(), js.String()
	}
	t1, j1 := render()
	t2, j2 := render()
	if t1 != t2 {
		t.Errorf("text report unstable:\n--- first ---\n%s--- second ---\n%s", t1, t2)
	}
	if j1 != j2 {
		t.Errorf("JSON report unstable:\n--- first ---\n%s--- second ---\n%s", j1, j2)
	}
}

// TestSortOrder checks the diagnostic ordering contract directly.
func TestSortOrder(t *testing.T) {
	diags := []lint.Diagnostic{
		{File: "b.go", Line: 1, Col: 1, Analyzer: "x", Message: "m"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "x", Message: "m"},
		{File: "a.go", Line: 1, Col: 5, Analyzer: "x", Message: "m"},
		{File: "a.go", Line: 1, Col: 1, Analyzer: "y", Message: "m"},
		{File: "a.go", Line: 1, Col: 1, Analyzer: "x", Message: "n"},
		{File: "a.go", Line: 1, Col: 1, Analyzer: "x", Message: "m"},
	}
	lint.Sort(diags)
	got := render(diags)
	want := "a.go:1:1: x: m\n" +
		"a.go:1:1: x: n\n" +
		"a.go:1:1: y: m\n" +
		"a.go:1:5: x: m\n" +
		"a.go:2:1: x: m\n" +
		"b.go:1:1: x: m\n"
	if got != want {
		t.Errorf("sort order:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteJSONEmpty checks a clean run renders the literal empty array,
// never null.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty report = %q, want []", got)
	}
	var arr []lint.Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Errorf("empty report does not parse: %v", err)
	}
}

// TestByName checks suite lookup by analyzer name.
func TestByName(t *testing.T) {
	as, ok := lint.ByName([]string{"errwrap", "determinism"})
	if !ok || len(as) != 2 || as[0].Name() != "errwrap" || as[1].Name() != "determinism" {
		t.Errorf("ByName(errwrap, determinism) = %v, %v", as, ok)
	}
	if _, ok := lint.ByName([]string{"nonesuch"}); ok {
		t.Error("ByName(nonesuch) should fail")
	}
}

// render formats diagnostics one per line without the summary footer.
func render(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
