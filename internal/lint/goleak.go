package lint

import (
	"go/ast"
)

// goleak flags fire-and-forget goroutines: every `go` statement must be
// joinable or cancellable, or it outlives its spawner silently — the
// classic leak under the million-user load generator, where an unjoined
// goroutine per session is an unbounded heap.
//
// A goroutine counts as joinable/cancellable when any of these hold:
//
//   - an argument (or captured use) is a context — cancellation reaches it;
//   - its body calls Done() on something (WaitGroup join) or is deferred to;
//   - its body sends on a channel or closes one — a completion signal the
//     spawner can receive;
//   - its body calls Wait() (it is itself a joiner).
//
// For `go f(...)` and `go r.m(...)` spawning a named same-package function,
// the callee's body is resolved and inspected by name — one level deep,
// which covers the worker-method idiom (go p.worker(ctx)). Goroutines that
// are intentionally process-lifetime (an HTTP accept loop) take a
// //lint:ignore goleak with the reason.
type goleak struct {
	scope []string
}

// NewGoleak returns the goleak analyzer restricted to packages whose import
// path contains one of the scope segments; an empty scope checks every
// package (fixtures).
func NewGoleak(scope ...string) Analyzer { return &goleak{scope: scope} }

func (g *goleak) Name() string { return "goleak" }
func (g *goleak) Doc() string {
	return "every go statement must be joinable (WaitGroup/channel) or ctx-cancellable"
}

func (g *goleak) Run(pass *Pass) {
	if len(g.scope) > 0 && !pathHasAny(pass.Pkg.Path, g.scope) {
		return
	}
	// Index the package's named function bodies for depth-1 resolution.
	bodies := map[string]*ast.FuncDecl{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				bodies[fd.Name.Name] = fd
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if g.joinable(gs, bodies) {
				return true
			}
			pass.Report(gs, "fire-and-forget goroutine: not joinable (no WaitGroup Done, channel send or close) and not ctx-cancellable; join it, pass a ctx, or //lint:ignore goleak with a reason")
			return true
		})
	}
}

// joinable decides one go statement.
func (g *goleak) joinable(gs *ast.GoStmt, bodies map[string]*ast.FuncDecl) bool {
	// A context argument makes the goroutine cancellable.
	for _, arg := range gs.Call.Args {
		if isContextExpr(arg) {
			return true
		}
	}
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		// Captured contexts count the same as passed ones.
		if fnBodySignalsJoin(fun.Body) || referencesContext(fun.Body) {
			return true
		}
		// A context parameter declared on the literal itself.
		if funcTypeHasContext(fun.Type) {
			return true
		}
		return false
	case *ast.Ident:
		if decl, ok := bodies[fun.Name]; ok {
			return funcTypeHasContext(decl.Type) || fnBodySignalsJoin(decl.Body)
		}
	case *ast.SelectorExpr:
		if decl, ok := bodies[fun.Sel.Name]; ok {
			return funcTypeHasContext(decl.Type) || fnBodySignalsJoin(decl.Body)
		}
	}
	// Unresolvable callee (another package, a stored func value): the
	// analysis cannot prove a leak, so it stays silent — missing
	// information is never a violation.
	return true
}

// fnBodySignalsJoin reports whether a goroutine body contains a join or
// completion signal: x.Done(), defer x.Done(), a channel send, close(ch),
// or x.Wait().
func fnBodySignalsJoin(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
			}
			if _, name, _, ok := selCall(v); ok && (name == "Done" || name == "Wait") {
				found = true
			}
		}
		return !found
	})
	return found
}

// referencesContext reports whether the body uses a context: an ident named
// ctx, or a selector chain ending in a context-typed use (x.ctx).
func referencesContext(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && (id.Name == "ctx" || id.Name == "Context") {
			found = true
		}
		return !found
	})
	return found
}

// isContextExpr matches arguments that carry a context by convention: the
// ident ctx, a selector ending in .ctx / .Context(), or a context.*
// constructor result.
func isContextExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name == "ctx"
	case *ast.SelectorExpr:
		return v.Sel.Name == "ctx"
	case *ast.CallExpr:
		if recv, name, _, ok := selCall(v); ok {
			if id, isID := recv.(*ast.Ident); isID && id.Name == "context" {
				return true
			}
			return name == "Context"
		}
	}
	return false
}

// funcTypeHasContext reports whether a function type declares a parameter
// written as <pkg>.Context.
func funcTypeHasContext(ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, p := range ft.Params.List {
		if sel, ok := p.Type.(*ast.SelectorExpr); ok && sel.Sel.Name == "Context" {
			return true
		}
	}
	return false
}
