// Package clean publishes artifacts through the atomic staging layer.
package clean

import (
	"os"

	"github.com/joda-explore/betze/internal/fsatomic"
)

// Export stages the file and publishes it with a rename.
func Export(path string, data []byte) error {
	return fsatomic.WriteFile(path, data, 0o644)
}

// Read-side os calls are fine; only file creation is publication.
func Load(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Mkdir and friends are not file publication either.
func Prepare(dir string) error {
	return os.MkdirAll(dir, 0o755)
}
