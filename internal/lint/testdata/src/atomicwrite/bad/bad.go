// Package bad publishes artifacts with torn-write-prone os calls.
package bad

import (
	"fmt"
	"os"
)

// Export writes a result file directly; a crash mid-write leaves a torn
// artifact under the final name.
func Export(path string, rows []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, r := range rows {
		fmt.Fprintln(f, r)
	}
	return f.Close()
}

// Dump is the one-shot variant with the same flaw.
func Dump(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// Trace appends to a log stream where partial content after a crash is
// wanted; the suppression must silence the finding.
func Trace(path string) (*os.File, error) {
	//lint:ignore atomicwrite trace is an append stream
	return os.Create(path)
}
