// Package bad violates the determinism invariant in every detectable way.
package bad

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Stamp reads the wall clock in a deterministic path.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Pick uses the ambient global source.
func Pick(n int) int {
	return rand.Intn(n)
}

// Shuffle uses the global source through another function.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Keys leaks map iteration order into an ordered slice without sorting.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Dump leaks map iteration order into a writer.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
