// Package clean satisfies the determinism invariant: seeded randomness,
// injected timestamps, sorted map iterations, order-free map transforms.
package clean

import (
	"math/rand"
	"sort"
)

// Pick draws from an explicitly seeded source.
func Pick(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Keys collects then sorts: iteration order cannot leak.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Invert is a map-to-map transform; iteration order is immaterial.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
