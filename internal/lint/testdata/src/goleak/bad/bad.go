// Package bad spawns fire-and-forget goroutines: no join signal, no
// context, nothing the spawner could wait on or cancel.
package bad

// Background spawns a goroutine nothing can join or cancel.
func Background(work func() error) {
	go func() {
		_ = work()
	}()
}

// loop runs forever with no cancellation hook.
func loop(n int) {
	for i := 0; i < n; i++ {
		_ = i * i
	}
}

// SpawnNamed resolves the same-package callee and finds no join signal.
func SpawnNamed() {
	go loop(10)
}

// SpawnMethod spawns a joinless method.
type Runner struct{ n int }

func (r *Runner) run() {
	r.n++
}

// Spawn leaks the method goroutine.
func (r *Runner) Spawn() {
	go r.run()
}
