// Package clean spawns only joinable or cancellable goroutines: WaitGroup
// joins, channel completion signals, context cancellation — plus one
// intentional process-lifetime goroutine under a //lint:ignore.
package clean

import (
	"context"
	"sync"
)

// WithWaitGroup joins via wg.Done.
func WithWaitGroup(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// WithChannel signals completion on a channel.
func WithChannel(work func() error) <-chan error {
	errc := make(chan error, 1)
	go func() {
		errc <- work()
	}()
	return errc
}

// WithClose signals completion by closing a channel.
func WithClose(work func()) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// worker honours its context.
func worker(ctx context.Context, jobs <-chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case j := <-jobs:
			_ = j
		}
	}
}

// WithContext passes a context to a named worker.
func WithContext(ctx context.Context, jobs chan int) {
	go worker(ctx, jobs)
}

// CapturedContext captures ctx inside the literal.
func CapturedContext(ctx context.Context, work func()) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

// AcceptLoop is intentionally process-lifetime; the ignore documents it.
func AcceptLoop(accept func() error) {
	//lint:ignore goleak accept loop lives for the whole process, torn down by exit
	go func() {
		for {
			if err := accept(); err != nil {
				return
			}
		}
	}()
}
