// Package clean draws every observability name from the vocabulary.
package clean

import (
	"time"

	"github.com/joda-explore/betze/internal/obs"
)

// Run reports metrics and trace events under vocabulary names.
func Run(sc obs.Scope, engine string) {
	sc.Counter(obs.MHarnessSessions).Inc()
	sc.Observe(obs.MHarnessSession, time.Second)
	sc.Counter(obs.EngineMetric(engine, obs.EMQueries)).Inc()
	sc.Record(obs.Event{Type: obs.EvSessionStart, Engine: engine})
	sc.Record(obs.Event{Type: obs.EvSkip, Kind: obs.KindBreakerOpen})
}
