// Package bad invents observability names inline.
package bad

import (
	"time"

	"github.com/joda-explore/betze/internal/obs"
)

// Run reports metrics and trace events under ad-hoc names.
func Run(sc obs.Scope, engine string) {
	sc.Counter("bad.ops").Inc()
	sc.Gauge("bad.level").Set(1)
	sc.Observe("bad.latency", time.Second)
	sc.Counter("engine." + engine + ".ops").Inc()
	sc.Record(obs.Event{Type: "made_up", Engine: engine})
	sc.Record(obs.Event{Type: obs.EvSkip, Kind: "novel_kind"})
}
