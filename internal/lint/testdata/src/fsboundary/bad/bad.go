// Package bad persists durable state through os directly, invisible to the
// crash-point harness.
package bad

import "os"

// Journal writes a journal segment with raw os calls: the fault injector
// and crash simulator never see these ops.
func Journal(dir string, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(dir+"/current.wal", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(payload); err != nil {
		return err
	}
	// A durability barrier on a raw handle: unrecorded, unenumerable.
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(dir+"/current.wal", dir+"/000001.wal")
}

// Publish has the same flaw in one-shot form.
func Publish(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// Inspect reads recovery state around the seam.
func Inspect(dir string) ([]byte, error) {
	if _, err := os.ReadDir(dir); err != nil {
		return nil, err
	}
	return os.ReadFile(dir + "/000001.wal")
}

// Scratch is allowed through the escape hatch: a genuinely non-durable
// spill file can stay on os with a documented reason.
func Scratch(path string) error {
	//lint:ignore fsboundary scratch spill is rebuilt on start, durability not claimed
	return os.WriteFile(path, nil, 0o600)
}
