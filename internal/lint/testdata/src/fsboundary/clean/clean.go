// Package clean persists durable state through an injected filesystem seam;
// os supplies only flags and sentinels.
package clean

import (
	"errors"
	"io"
	"os"
)

// FS is the storage seam (the shape of errfs.FS, local to the fixture).
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	SyncDir(dir string) error
}

// File is the handle side of the seam.
type File interface {
	io.WriteCloser
	Sync() error
}

// Journal writes a segment through the seam: every write, sync and rename
// is recordable and faultable.
func Journal(fsys FS, dir string, payload []byte) error {
	f, err := fsys.OpenFile(dir+"/current.wal", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return err
		}
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(dir+"/current.wal", dir+"/000001.wal"); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
