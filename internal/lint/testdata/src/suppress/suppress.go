// Package suppress exercises the //lint:ignore machinery: one suppressed
// finding on the same line, one suppressed from the line above, one
// unsuppressed finding, and one malformed ignore comment.
package suppress

import "time"

// SameLine suppresses on the offending line itself.
func SameLine() int64 {
	return time.Now().UnixNano() //lint:ignore determinism fixture exercises same-line suppression
}

// LineAbove suppresses from the line directly above.
func LineAbove() int64 {
	//lint:ignore determinism fixture exercises line-above suppression
	return time.Now().UnixNano()
}

// Unsuppressed must still be reported.
func Unsuppressed() int64 {
	return time.Now().UnixNano()
}

// Malformed carries an ignore comment without a reason, which is itself a
// finding.
func Malformed() int64 {
	//lint:ignore determinism
	return time.Now().UnixNano()
}
