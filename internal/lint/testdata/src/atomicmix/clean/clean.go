// Package clean keeps every access to atomic state on the atomic API, and
// shows the exempt shapes: construction in composite literals, address-of
// feeding the atomic calls, and an explained //lint:ignore.
package clean

import "sync/atomic"

// Counter is accessed exclusively through sync/atomic.
type Counter struct {
	hits int64
	name string
}

// NewCounter constructs the struct before it is shared — a composite
// literal write is not a racing access.
func NewCounter(name string) *Counter {
	return &Counter{hits: 0, name: name}
}

// Inc and Load stay on the atomic API.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

// Load reads atomically.
func (c *Counter) Load() int64 {
	return atomic.LoadInt64(&c.hits)
}

// Name touches only the non-atomic field.
func (c *Counter) Name() string {
	return c.name
}

// Snapshot reads the field plainly under an external guarantee the ignore
// spells out.
func (c *Counter) Snapshot() int64 {
	//lint:ignore atomicmix called only after all writer goroutines joined, no concurrent access remains
	return c.hits
}
