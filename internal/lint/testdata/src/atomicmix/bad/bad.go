// Package bad mixes atomic and plain access to the same fields: the plain
// reads and writes race the atomic ones.
package bad

import "sync/atomic"

// Counter counts hits atomically... mostly.
type Counter struct {
	hits  int64
	total int64
}

// Inc is the atomic path.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.total, 1)
}

// Read bypasses the atomic API: a plain read of an atomic field.
func (c *Counter) Read() int64 {
	return c.hits
}

// Reset bypasses it on the write side.
func (c *Counter) Reset() {
	c.total = 0
}

// global is accessed atomically in Bump and plainly in Peek.
var global int64

// Bump is the atomic path for the package-level counter.
func Bump() {
	atomic.AddInt64(&global, 1)
}

// Peek reads it plainly.
func Peek() int64 {
	return global
}
