// Package clean follows the sentinel-error contract.
package clean

import (
	"errors"
	"fmt"
)

// ErrGone is a sentinel.
var ErrGone = errors.New("clean: gone")

// Check tests through the wrapped chain.
func Check(err error) bool {
	return errors.Is(err, ErrGone)
}

// Wrap preserves the sentinel's identity with %w.
func Wrap(name string) error {
	return fmt.Errorf("lookup %q: %w", name, ErrGone)
}

// NilCheck and plain comparisons of non-sentinel values stay legal.
func NilCheck(err error) bool {
	return err == nil
}
