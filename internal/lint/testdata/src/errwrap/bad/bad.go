// Package bad breaks the sentinel-error contract.
package bad

import (
	"errors"
	"fmt"
)

// ErrGone is a sentinel.
var ErrGone = errors.New("bad: gone")

// Check compares a sentinel with ==, which no wrapped chain survives.
func Check(err error) bool {
	return err == ErrGone
}

// CheckNot compares with != through a selector.
func CheckNot(err error) bool {
	return errors.ErrUnsupported != err
}

// Classify switches on the error value, == in disguise.
func Classify(err error) string {
	switch err {
	case ErrGone:
		return "gone"
	}
	return "other"
}

// Wrap flattens the sentinel with %v instead of wrapping it with %w.
func Wrap(name string) error {
	return fmt.Errorf("lookup %q: %v", name, ErrGone)
}
