// Package clean follows WaitGroup discipline: Add before (and dominating)
// every spawn, deferred Done, no Add inside goroutines — plus a nested
// inner WaitGroup and a suppressed violation.
package clean

import "sync"

// FanOut is the canonical loop: Add(1) immediately before each spawn.
func FanOut(jobs []func()) {
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		go func(job func()) {
			defer wg.Done()
			job()
		}(job)
	}
	wg.Wait()
}

// AddOnce counts the whole fleet up front.
func AddOnce(n int, work func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// NestedGroups declares an inner WaitGroup inside the goroutine for its own
// sub-spawns: Add on a locally-declared group is not a race against the
// outer Wait.
func NestedGroups(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var inner sync.WaitGroup
		inner.Add(1)
		go func() {
			defer inner.Done()
			work()
		}()
		inner.Wait()
	}()
	wg.Wait()
}

// Joiner spawns a goroutine that only Waits — it is not counted, so no Add
// needs to dominate it.
func Joiner(wg *sync.WaitGroup, done chan struct{}) {
	go func() {
		wg.Wait()
		close(done)
	}()
}

// SuppressedLateAdd documents a deliberate late Add; the ignore explains
// why it is safe here (Wait is never called in this function).
func SuppressedLateAdd(work func()) {
	var wg sync.WaitGroup
	//lint:ignore wgdiscipline no Wait in this function; the group is handed to the caller before use
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Add(1)
}
