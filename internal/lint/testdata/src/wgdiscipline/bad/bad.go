// Package bad breaks each WaitGroup rule: Add that does not dominate the
// spawn, Add from inside the goroutine, and a conditional Done.
package bad

import "sync"

// AddAfterSpawn calls Add after the goroutine is already running: Wait can
// return before the goroutine is counted.
func AddAfterSpawn(work func()) {
	var wg sync.WaitGroup
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Add(1)
	wg.Wait()
}

// AddOnOneBranch only Adds on one path to the spawn.
func AddOnOneBranch(work func(), counted bool) {
	var wg sync.WaitGroup
	if counted {
		wg.Add(1)
	}
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// AddInside moves Add into the goroutine, racing Wait.
func AddInside(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		wg.Add(1)
		defer wg.Done()
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// ConditionalDone skips Done on the error path, deadlocking Wait.
func ConditionalDone(work func() error) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if err := work(); err != nil {
			return
		}
		wg.Done()
	}()
	wg.Wait()
}
