// Package bad mutates journaled queue state before the journal append: a
// crash between the two leaves memory ahead of the journal, and recovery
// resurrects or loses the update.
package bad

import "example.com/runlog"

// Queue journals every transition through its runlog writer.
type Queue struct {
	w     *runlog.Writer
	jobs  map[string]int
	order []string
	seq   int
}

// Enqueue mutates first and journals second — the crash window.
func (q *Queue) Enqueue(id string) error {
	q.jobs[id] = 1
	q.order = append(q.order, id)
	return q.w.AppendSync([]byte(id))
}

// Remove deletes from memory before the journal knows.
func (q *Queue) Remove(id string) error {
	delete(q.jobs, id)
	return q.w.AppendSync([]byte(id))
}

// BumpOnBranch journals on one path but mutates on both.
func (q *Queue) BumpOnBranch(id string, durable bool) error {
	if durable {
		if err := q.w.AppendSync([]byte(id)); err != nil {
			return err
		}
	}
	q.seq++
	return nil
}

// Alias mutates through a receiver-tainted local.
func (q *Queue) Alias(id string) error {
	jobs := q.jobs
	jobs[id] = 2
	return q.w.AppendSync([]byte(id))
}
