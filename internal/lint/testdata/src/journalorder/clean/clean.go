// Package clean journals before it mutates, marks rebuilt-on-restart
// fields volatile, exempts recovery replay at function level, and carries
// one line-level suppression.
package clean

import "example.com/runlog"

// Queue journals every durable transition; scheduling state is volatile.
type Queue struct {
	w     *runlog.Writer
	jobs  map[string]int
	order []string
	// notify is rebuilt on every Open. volatile: wakes pollers, never journaled.
	notify chan struct{}
	// draining is runtime-only admission state. volatile: reset on restart.
	draining bool
}

// Enqueue appends first, mutates second.
func (q *Queue) Enqueue(id string) error {
	if err := q.w.AppendSync([]byte(id)); err != nil {
		return err
	}
	q.jobs[id] = 1
	q.order = append(q.order, id)
	return nil
}

// append is the same-package journaling helper the analyzer resolves.
func (q *Queue) append(payload []byte) error {
	return q.w.AppendSync(payload)
}

// Remove journals through the helper before deleting.
func (q *Queue) Remove(id string) error {
	if err := q.append([]byte(id)); err != nil {
		return err
	}
	delete(q.jobs, id)
	return nil
}

// Drain flips only volatile state: no journal entry needed.
func (q *Queue) Drain() {
	q.draining = true
	close(q.notify)
	q.notify = make(chan struct{})
}

// replay folds the journal into memory during recovery — the one place
// where memory is written from the journal instead of ahead of it.
//
//lint:ignore journalorder replay reconstructs memory FROM the journal; appending here would duplicate records
func (q *Queue) replay(ids []string) {
	for _, id := range ids {
		q.jobs[id] = 1
		q.order = append(q.order, id)
	}
}

// Requeue documents one deliberate mutate-before-append with a line-level
// suppression.
func (q *Queue) Requeue(id string) error {
	//lint:ignore journalorder the slot was already journaled by Enqueue; this only restores the in-memory view
	q.jobs[id] = 1
	return q.w.AppendSync([]byte(id))
}
