// Package bad re-roots contexts in library code.
package bad

import "context"

// Lookup receives a ctx but mints a fresh root, detaching cancellation
// and the observability scope.
func Lookup(ctx context.Context, key string) string {
	return fetch(context.Background(), key)
}

// Fetch has no ctx to forward and should accept one.
func Fetch(key string) string {
	return fetch(context.TODO(), key)
}

func fetch(ctx context.Context, key string) string {
	_ = ctx
	return key
}
