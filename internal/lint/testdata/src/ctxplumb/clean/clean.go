// Package clean plumbs received contexts.
package clean

import "context"

// Lookup forwards the ctx it received, deriving deadlines from it.
func Lookup(ctx context.Context, key string) string {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return fetch(ctx, key)
}

func fetch(ctx context.Context, key string) string {
	_ = ctx
	return key
}
