// Package clean follows lock discipline: deferred release, branch-balanced
// release, no blocking while held, pointers instead of copies — plus one
// deliberate violation under a //lint:ignore to exercise suppression.
package clean

import "sync"

// Store holds a mutex-guarded map.
type Store struct {
	mu sync.Mutex
	m  map[string]int
}

// Get uses the deferred-release idiom.
func (s *Store) Get(k string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	return v, ok
}

// GetInline releases on both paths explicitly.
func (s *Store) GetInline(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// SendOutside copies the value out under the lock and sends after release.
func (s *Store) SendOutside(ch chan int, k string) {
	s.mu.Lock()
	v := s.m[k]
	s.mu.Unlock()
	ch <- v
}

// NonBlockingSelect polls with a default clause while holding the lock —
// legal, since a select with default never parks.
func (s *Store) NonBlockingSelect(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-ch:
		s.m["v"] = v
	default:
	}
}

// ByPointer takes the lock by pointer, as it must be.
func ByPointer(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

// RGet uses the read side of an RWMutex symmetrically.
type RStore struct {
	mu sync.RWMutex
	m  map[string]int
}

// Get releases the read lock via defer.
func (r *RStore) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

// SuppressedSend deliberately sends while holding the lock; the ignore
// documents why (the channel is buffered and owned by this store).
func (s *Store) SuppressedSend(ch chan int, k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockbalance the channel is buffered with capacity for every waiter, the send cannot park
	ch <- s.m[k]
}
