// Package bad violates every lockbalance rule: a lock left held on an
// early return, a lock held across blocking points, and copied mutexes.
package bad

import "sync"

// Store holds a mutex-guarded map.
type Store struct {
	mu sync.Mutex
	m  map[string]int
}

// LeakOnError returns early while still holding the lock.
func (s *Store) LeakOnError(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// SendWhileLocked blocks on a channel send with the lock held.
func (s *Store) SendWhileLocked(ch chan int, k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- s.m[k]
}

// WaitWhileLocked parks on a WaitGroup with the lock held.
func (s *Store) WaitWhileLocked(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait()
	s.mu.Unlock()
}

// SelectWhileLocked blocks in a select with the lock held.
func (s *Store) SelectWhileLocked(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-ch:
		s.m["v"] = v
	}
}

// ByValue receives the mutex by value: the copy guards nothing.
func ByValue(mu sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

// Reassign copies a mutex value into a second variable.
func Reassign() {
	var mu sync.Mutex
	mu2 := mu
	mu2.Lock()
	mu2.Unlock()
}

// FallsOffEnd acquires on one branch and falls off the end still holding.
func FallsOffEnd(cond bool) {
	var mu sync.Mutex
	if cond {
		mu.Lock()
	}
}
