// Package clean releases or hands off every acquired resource.
package clean

import (
	"os"

	"github.com/joda-explore/betze/internal/engine/jodasim"
)

// Sized closes the file on every path.
func Sized(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Scratch pairs the temp dir with its removal.
func Scratch() error {
	dir, err := os.MkdirTemp("", "x")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	return nil
}

// Build returns the engine: ownership escapes to the caller.
func Build() *jodasim.Engine {
	return buildNamed()
}

func buildNamed() *jodasim.Engine {
	eng := jodasim.New(jodasim.Options{})
	return eng
}
