// Package bad leaks acquired resources.
package bad

import (
	"os"

	"github.com/joda-explore/betze/internal/engine/jodasim"
)

// Leaky opens a file, scans it, and never closes it.
func Leaky(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// LeakyDir makes a temp dir nothing ever removes.
func LeakyDir() (string, error) {
	dir, err := os.MkdirTemp("", "x")
	if err != nil {
		return "", err
	}
	return "ok", nil
}

// LeakyEngine builds an engine and abandons it with its parsed datasets.
func LeakyEngine() string {
	eng := jodasim.New(jodasim.Options{})
	return eng.Name()
}
