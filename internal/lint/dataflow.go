package lint

import (
	"go/ast"
)

// Flow describes one forward dataflow problem over a CFG. The framework is
// deliberately small: facts flow from the entry along edges, blocks fold
// their statements through Transfer, and joins merge predecessor facts —
// union-shaped Join gives a may analysis ("the lock might be held here"),
// intersection-shaped Join a must analysis ("an AppendSync definitely
// executed before this point").
type Flow[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Top is the optimistic initial fact, the identity of Join: joining Top
	// with x yields x. Blocks whose predecessors have not been computed yet
	// (loop back-edges on the first sweep, unreachable code) start here.
	Top F
	// Join merges the facts of two incoming edges.
	Join func(a, b F) F
	// Equal detects the fixpoint.
	Equal func(a, b F) bool
	// Transfer folds one statement into the fact. It must interpret only
	// the statement parts evaluated in the statement's own block — use
	// OwnedExprs for compound statements.
	Transfer func(s ast.Stmt, f F) F
}

// ForwardFlow iterates the problem to its fixpoint and returns every
// block's IN fact (the fact holding before the block's first statement).
// Statement-level facts are recovered by replaying Transfer from a block's
// IN — see WalkFacts.
func ForwardFlow[F any](g *CFG, fl Flow[F]) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	out := make(map[*Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = fl.Top
		out[b] = fl.Top
	}
	in[g.Entry] = fl.Entry

	// Round-robin over blocks in index order (an approximation of reverse
	// postorder good enough for the small functions a lint pass sees) until
	// nothing changes. Monotone transfer + finite lattice ⇒ termination.
	computed := make(map[*Block]bool, len(g.Blocks))
	computed[g.Entry] = true
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			f := in[b]
			if b != g.Entry {
				first := true
				for _, p := range b.Preds {
					if !computed[p] {
						continue
					}
					if first {
						f = out[p]
						first = false
					} else {
						f = fl.Join(f, out[p])
					}
				}
				if first {
					f = fl.Top // unreachable or not yet fed
				}
			}
			o := f
			for _, s := range b.Stmts {
				o = fl.Transfer(s, o)
			}
			if !fl.Equal(in[b], f) || !fl.Equal(out[b], o) || !computed[b] {
				in[b], out[b] = f, o
				computed[b] = true
				changed = true
			}
		}
	}
	return in
}

// WalkFacts replays the transfer function over every block, invoking visit
// with the fact holding immediately *before* each statement — the hook
// analyzers use to ask "was the journal written before this assignment?" or
// "is the lock held at this channel send?".
func WalkFacts[F any](g *CFG, in map[*Block]F, transfer func(s ast.Stmt, f F) F, visit func(s ast.Stmt, f F)) {
	for _, b := range g.Blocks {
		f := in[b]
		for _, s := range b.Stmts {
			visit(s, f)
			f = transfer(s, f)
		}
	}
}
