package lint_test

import (
	"testing"

	"github.com/joda-explore/betze/internal/lint"
)

// TestTreeIsLintClean loads the whole module and runs the default suite —
// the same check `make lint` performs. The tree must stay clean: a finding
// here means a new violation of one of the machine-checked invariants (or a
// missing //lint:ignore with its reason).
func TestTreeIsLintClean(t *testing.T) {
	pkgs, err := lint.Load("../..")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("Load found only %d packages; loader regression?", len(pkgs))
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d finding(s); fix them or add //lint:ignore <analyzer> <reason>", len(diags))
	}
}
