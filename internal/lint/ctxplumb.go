package lint

import (
	"go/ast"
)

// ctxplumb enforces context plumbing in library code: internal packages
// must not mint root contexts with context.Background() or context.TODO()
// — cancellation and observability scopes ride on the context, so a
// re-rooted context silently detaches a subtree from both. Commands and
// examples are process roots and may create contexts freely.
//
// The "forward the ctx you received" half of the invariant is approximated
// syntactically: a Background()/TODO() call inside a function that already
// has a context parameter is reported with a sharper message, since the fix
// is simply to use the parameter.
type ctxplumb struct {
	scope []string
}

// NewCtxplumb returns the ctxplumb analyzer restricted to packages whose
// import path contains one of the scope segments (default: "internal/");
// an empty argument list applies the default, NewCtxplumb("") checks every
// package (fixtures).
func NewCtxplumb(scope ...string) Analyzer {
	if len(scope) == 0 {
		scope = []string{"internal/"}
	} else if len(scope) == 1 && scope[0] == "" {
		scope = nil
	}
	return &ctxplumb{scope: scope}
}

func (c *ctxplumb) Name() string { return "ctxplumb" }
func (c *ctxplumb) Doc() string {
	return "internal packages must plumb received contexts, not mint Background/TODO roots"
}

func (c *ctxplumb) Run(pass *Pass) {
	if len(c.scope) > 0 && !pathHasAny(pass.Pkg.Path, c.scope) {
		return
	}
	for _, f := range pass.Pkg.Files {
		aliases := importAliases(f)
		// Find the alias under which "context" is imported, if at all.
		ctxAlias := ""
		for alias, path := range aliases {
			if path == "context" {
				ctxAlias = alias
			}
		}
		if ctxAlias == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			decl, ok := n.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				return true
			}
			hasCtx := funcHasCtxParam(decl, ctxAlias)
			ast.Inspect(decl.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				path, name, ok := pkgFuncCall(aliases, call)
				if !ok || path != "context" || (name != "Background" && name != "TODO") {
					return true
				}
				if hasCtx {
					pass.Report(call, "function receives a ctx but mints context.%s(); forward the received ctx", name)
				} else {
					pass.Report(call, "context.%s() roots a new context in library code; accept a ctx from the caller", name)
				}
				return true
			})
			return false // the inner inspect handled the body
		})
	}
}

// funcHasCtxParam reports whether the function declares a parameter of type
// <ctxAlias>.Context.
func funcHasCtxParam(decl *ast.FuncDecl, ctxAlias string) bool {
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == ctxAlias {
			return true
		}
	}
	return false
}
