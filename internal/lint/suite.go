package lint

// Analyzers returns the default suite with the repository's scopes applied:
// the machine-checked invariants of DESIGN.md §"Machine-checked
// invariants", in report order.
func Analyzers() []Analyzer {
	return []Analyzer{
		NewAtomicmix(),
		NewAtomicwrite(AtomicWriteScope...),
		NewClosecheck(),
		NewCtxplumb(),
		NewDeterminism(DeterminismScope...),
		NewErrwrap(),
		NewFsboundary(FsboundaryScope...),
		NewGoleak("internal/", "cmd/"),
		NewJournalorder("internal/jobqueue"),
		NewLockbalance(),
		NewObsvocab(),
		NewWgdiscipline(),
	}
}

// ByName returns the subset of the default suite with the given names, in
// the given order; unknown names return nil, false.
func ByName(names []string) ([]Analyzer, bool) {
	all := Analyzers()
	var out []Analyzer
	for _, name := range names {
		found := false
		for _, a := range all {
			if a.Name() == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}
