package lint

import (
	"go/ast"
	"go/token"
)

// atomicmix enforces all-or-nothing atomicity per field: a variable or
// struct field accessed through sync/atomic anywhere in the package must
// never be read or written plainly elsewhere. Mixing the two silently
// downgrades every atomic access — the plain read can observe a torn or
// stale value and the race detector only notices when a test happens to
// interleave. This is the guard rail for the obs lock-freedom work: once a
// counter moves to atomic.AddInt64, every straggler `n++` is a finding.
//
// The check is syntactic and intra-package (the lenient loader has no type
// information for the standard library): the address arguments of
// sync/atomic function calls (&s.n, &count) define the atomic name set by
// field/variable name, and any plain use of those names outside an atomic
// call is reported. Composite-literal initialisation and address-taking
// are exempt — construction before sharing and handing the address to an
// atomic helper are both legitimate. Typed atomics (atomic.Int64 fields)
// need no analyzer: their methods are the only access path.
type atomicmix struct {
	scope []string
}

// NewAtomicmix returns the atomicmix analyzer restricted to packages whose
// import path contains one of the scope segments; an empty scope checks
// every package.
func NewAtomicmix(scope ...string) Analyzer { return &atomicmix{scope: scope} }

func (a *atomicmix) Name() string { return "atomicmix" }
func (a *atomicmix) Doc() string {
	return "a field accessed via sync/atomic must never be accessed plainly elsewhere"
}

func (a *atomicmix) Run(pass *Pass) {
	if len(a.scope) > 0 && !pathHasAny(pass.Pkg.Path, a.scope) {
		return
	}
	// Pass 1: collect the names accessed atomically anywhere in the package.
	atomicNames := map[string]bool{}
	type fileAliases struct {
		f       *ast.File
		aliases map[string]string
	}
	files := make([]fileAliases, 0, len(pass.Pkg.Files))
	for _, f := range pass.Pkg.Files {
		fa := fileAliases{f: f, aliases: importAliases(f)}
		files = append(files, fa)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, _, ok := pkgFuncCall(fa.aliases, call)
			if !ok || path != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				if name := addressedName(arg); name != "" {
					atomicNames[name] = true
				}
			}
			return true
		})
	}
	if len(atomicNames) == 0 {
		return
	}
	// Pass 2: report plain accesses of those names.
	for _, fa := range files {
		a.checkFile(pass, fa.f, fa.aliases, atomicNames)
	}
}

// addressedName extracts the field or variable name from an &x / &s.f
// argument of an atomic call.
func addressedName(arg ast.Expr) string {
	un, ok := arg.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return ""
	}
	switch v := un.X.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	}
	return ""
}

// checkFile reports plain uses of atomically-accessed names in one file.
// Subtrees whose matches are legitimate are pruned: atomic call arguments,
// composite literals (construction before sharing), address-taking (the
// address feeds an atomic call), and declarations, which name a field
// without accessing it.
func (a *atomicmix) checkFile(pass *Pass, f *ast.File, aliases map[string]string, atomicNames map[string]bool) {
	const msg = "plain access of %q, which is accessed via sync/atomic elsewhere in this package; use the atomic API everywhere"
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if path, _, ok := pkgFuncCall(aliases, v); ok && path == "sync/atomic" {
				return false
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				return false
			}
		case *ast.CompositeLit, *ast.Field, *ast.ValueSpec:
			return false
		case *ast.SelectorExpr:
			if atomicNames[v.Sel.Name] {
				name := exprKey(v)
				if name == "" {
					name = v.Sel.Name
				}
				pass.Report(v, msg, name)
				return false // report the selector once, not its inner ident
			}
			// The field does not match, and its Sel ident therefore cannot
			// match either; descending is safe and finds x.y.n chains.
		case *ast.Ident:
			if atomicNames[v.Name] {
				pass.Report(v, msg, v.Name)
			}
			return false
		}
		return true
	})
}
