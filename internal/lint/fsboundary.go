package lint

import (
	"go/ast"
)

// FsboundaryScope are the import-path segments of the durability packages:
// every byte they persist must flow through the errfs.FS seam so the
// crash-point harness can record, fault and replay it. A direct os call in
// one of these packages is storage the harness cannot see — untested
// durability.
var FsboundaryScope = []string{
	"internal/runlog",
	"internal/fsatomic",
	"internal/jobqueue",
}

// fsboundaryFuncs are the os functions that touch the filesystem. Constants
// (os.O_CREATE), sentinels (os.ErrNotExist) and error predicates are fine —
// only the calls that read or mutate storage must go through errfs.FS.
var fsboundaryFuncs = map[string]bool{
	"Create":     true,
	"CreateTemp": true,
	"Open":       true,
	"OpenFile":   true,
	"WriteFile":  true,
	"ReadFile":   true,
	"ReadDir":    true,
	"Rename":     true,
	"Remove":     true,
	"RemoveAll":  true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"Truncate":   true,
}

// fsboundary flags direct os filesystem calls — and fsyncs on raw *os.File
// handles — inside the durability packages. Those packages take an errfs.FS
// (default errfs.OS()) precisely so the crash-point harness can enumerate
// every write, sync and rename; a call that bypasses the seam is invisible
// to the fault injector and the crash simulator.
type fsboundary struct {
	scope []string
}

// NewFsboundary returns the fsboundary analyzer restricted to packages whose
// import path contains one of the scope segments; an empty scope checks
// every package (used by fixture tests).
func NewFsboundary(scope ...string) Analyzer { return &fsboundary{scope: scope} }

func (a *fsboundary) Name() string { return "fsboundary" }
func (a *fsboundary) Doc() string {
	return "durability packages must reach storage through the errfs.FS seam, never os directly"
}

// osHandleFuncs are the os functions whose result is a raw *os.File.
var osHandleFuncs = map[string]bool{
	"Create":     true,
	"CreateTemp": true,
	"Open":       true,
	"OpenFile":   true,
}

func (a *fsboundary) Run(pass *Pass) {
	if len(a.scope) > 0 && !pathHasAny(pass.Pkg.Path, a.scope) {
		return
	}
	for _, f := range pass.Pkg.Files {
		aliases := importAliases(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgFuncCall(aliases, call); ok && path == "os" && fsboundaryFuncs[name] {
				pass.Report(call, "os.%s bypasses the errfs.FS seam; route it through the package's FS so crash-point enumeration sees it", name)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			a.checkRawSync(pass, aliases, fn.Body)
			return true
		})
	}
}

// checkRawSync flags (*os.File).Sync calls: an fsync on a raw handle is a
// durability barrier the trace recorder never observes. Type information
// for the standard library is unavailable under the tolerant loader (see
// load.go), so receivers are found two ways, both conservative: the checked
// type says *os.File, or the identifier was assigned from an os handle
// constructor earlier in the same function. No answer means no finding.
func (a *fsboundary) checkRawSync(pass *Pass, aliases map[string]string, body *ast.BlockStmt) {
	handles := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgFuncCall(aliases, call); ok && path == "os" && osHandleFuncs[name] {
				if id, ok := st.Lhs[0].(*ast.Ident); ok {
					handles[id.Name] = true
				}
			}
		case *ast.CallExpr:
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sync" || len(st.Args) != 0 {
				return true
			}
			if a.isRawFile(pass, sel.X, handles) {
				pass.Report(st, "(*os.File).Sync bypasses the errfs.FS seam; sync through an errfs.File so crash-point enumeration sees the barrier")
			}
		}
		return true
	})
}

// isRawFile reports whether the receiver is known to be a raw *os.File.
func (a *fsboundary) isRawFile(pass *Pass, recv ast.Expr, handles map[string]bool) bool {
	if pass.Pkg.Info != nil {
		if tv, ok := pass.Pkg.Info.Types[recv]; ok && tv.Type != nil && tv.Type.String() == "*os.File" {
			return true
		}
	}
	id, ok := recv.(*ast.Ident)
	return ok && handles[id.Name]
}
