package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// importAliases maps the names by which a file refers to its imports to the
// imported paths ("rand" -> "math/rand"). Dot and blank imports are
// skipped; named imports use the given name, default imports the last path
// segment. Shadowing of an import alias by a local variable is rare enough
// in practice that the analyzers accept it as a known approximation.
func importAliases(f *ast.File) map[string]string {
	aliases := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "." || name == "_" {
			continue
		}
		aliases[name] = path
	}
	return aliases
}

// pkgFuncCall reports whether call is a selector call X.Sel(...) where X is
// an import alias, returning the imported path and the selected name.
func pkgFuncCall(aliases map[string]string, call *ast.CallExpr) (path, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	ident, okIdent := sel.X.(*ast.Ident)
	if !okIdent {
		return "", "", false
	}
	path, okPath := aliases[ident.Name]
	if !okPath {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// containsStringLit reports whether the expression contains a string
// literal anywhere (a bare literal, a concatenation with one, a conversion
// of one, ...).
func containsStringLit(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind.String() == "STRING" {
			found = true
		}
		return !found
	})
	return found
}

// inspectFuncs walks every function declaration and literal of the file,
// invoking fn with the function's body and, for declarations, the
// declaration itself (nil for literals).
func inspectFuncs(f *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Body != nil {
				fn(v, v.Body)
			}
		case *ast.FuncLit:
			fn(nil, v.Body)
		}
		return true
	})
}

// identUsed reports whether the identifier name is referenced anywhere
// inside node.
func identUsed(node ast.Node, name string) bool {
	used := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
		}
		return !used
	})
	return used
}

// exprKey renders an ident/selector/index chain as a stable string key
// ("mu", "q.mu", "q.jobs[id]" collapses to "q.jobs") for matching the same
// lvalue across statements within one function. Expressions outside that
// shape return "".
func exprKey(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		base := exprKey(v.X)
		if base == "" {
			return ""
		}
		return base + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprKey(v.X)
	case *ast.ParenExpr:
		return exprKey(v.X)
	case *ast.StarExpr:
		return exprKey(v.X)
	}
	return ""
}

// selCall matches the X.Sel(...) call shape, returning the receiver
// expression and the selected method name.
func selCall(n ast.Node) (recv ast.Expr, name string, call *ast.CallExpr, ok bool) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall {
		return nil, "", nil, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", nil, false
	}
	return sel.X, sel.Sel.Name, call, true
}

// inspectOwned walks only the parts of a statement evaluated in the
// statement's own basic block (see OwnedExprs), skipping nested function
// literals, whose bodies execute elsewhere.
func inspectOwned(s ast.Stmt, fn func(n ast.Node) bool) {
	for _, part := range OwnedExprs(s) {
		ast.Inspect(part, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			return fn(n)
		})
	}
}

// pathHasAny reports whether the import path contains one of the given
// slash-delimited segments sequences (e.g. "internal/query").
func pathHasAny(path string, segments []string) bool {
	for _, seg := range segments {
		if strings.Contains(path, seg) {
			return true
		}
	}
	return false
}
