package lint_test

import (
	"strings"
	"testing"

	"github.com/joda-explore/betze/internal/lint"
)

func diag(file, analyzer, msg string, line int) lint.Diagnostic {
	return lint.Diagnostic{File: file, Analyzer: analyzer, Message: msg, Line: line, Col: 1}
}

// TestFilterBaseline checks the multiset semantics: keys match on (file,
// analyzer, message) ignoring position, and counts are absorbed one-for-one.
func TestFilterBaseline(t *testing.T) {
	base, err := lint.ReadBaseline(strings.NewReader(`[
		{"file": "a.go", "analyzer": "determinism", "message": "m1", "line": 10, "col": 3},
		{"file": "a.go", "analyzer": "determinism", "message": "m1", "line": 20, "col": 3},
		{"file": "b.go", "analyzer": "goleak", "message": "m2", "line": 5, "col": 1}
	]`))
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}

	diags := []lint.Diagnostic{
		diag("a.go", "determinism", "m1", 11), // absorbed (line moved)
		diag("a.go", "determinism", "m1", 21), // absorbed
		diag("a.go", "determinism", "m1", 31), // third occurrence: new
		diag("b.go", "goleak", "m2", 5),       // absorbed
		diag("c.go", "lockbalance", "m3", 1),  // new file: new
	}
	got := lint.FilterBaseline(diags, base)
	if len(got) != 2 {
		t.Fatalf("got %d findings after baseline, want 2: %v", len(got), got)
	}
	if got[0].Line != 31 || got[0].File != "a.go" {
		t.Errorf("first surviving finding = %+v, want the third a.go occurrence", got[0])
	}
	if got[1].File != "c.go" {
		t.Errorf("second surviving finding = %+v, want the c.go one", got[1])
	}
}

// TestFilterBaselineEmpty checks a nil baseline passes everything through.
func TestFilterBaselineEmpty(t *testing.T) {
	diags := []lint.Diagnostic{diag("a.go", "x", "m", 1)}
	if got := lint.FilterBaseline(diags, nil); len(got) != 1 {
		t.Fatalf("nil baseline filtered findings: %v", got)
	}
}

// TestReadBaselineMalformed checks the error path.
func TestReadBaselineMalformed(t *testing.T) {
	if _, err := lint.ReadBaseline(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed baseline parsed without error")
	}
}
