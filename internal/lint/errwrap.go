package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// errwrap enforces the sentinel-error contract: values following the
// ErrXxx naming convention (engine.ErrUnknownDataset, faultsim.ErrCrash,
// ...) travel through wrapped error chains, so they must be tested with
// errors.Is — never compared with == or != — and must be wrapped into
// fmt.Errorf with the %w verb, never flattened by %v or %s.
type errwrap struct{}

// NewErrwrap returns the errwrap analyzer.
func NewErrwrap() Analyzer { return errwrap{} }

func (errwrap) Name() string { return "errwrap" }
func (errwrap) Doc() string {
	return "sentinel errors must be wrapped with %w and tested with errors.Is, never =="
}

func (errwrap) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		aliases := importAliases(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op != token.EQL && v.Op != token.NEQ {
					return true
				}
				if name, ok := sentinelRef(v.X); ok {
					pass.Report(v, "comparing sentinel %s with %s survives no wrapping; use errors.Is", name, v.Op)
				} else if name, ok := sentinelRef(v.Y); ok {
					pass.Report(v, "comparing sentinel %s with %s survives no wrapping; use errors.Is", name, v.Op)
				}
			case *ast.SwitchStmt:
				// switch err { case ErrX: } is == in disguise.
				if v.Body == nil {
					return true
				}
				for _, stmt := range v.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, expr := range cc.List {
						if name, ok := sentinelRef(expr); ok {
							pass.ReportPos(expr.Pos(), "switch case on sentinel %s survives no wrapping; use errors.Is", name)
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, aliases, v)
			}
			return true
		})
	}
}

// checkErrorfWrap flags fmt.Errorf calls that pass a sentinel as an
// argument without a %w verb in the format string (so the sentinel's
// identity is lost to errors.Is downstream).
func checkErrorfWrap(pass *Pass, aliases map[string]string, call *ast.CallExpr) {
	path, name, ok := pkgFuncCall(aliases, call)
	if !ok || path != "fmt" || name != "Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	wraps := strings.Count(format, "%w")
	for _, arg := range call.Args[1:] {
		if sname, ok := sentinelRef(arg); ok && wraps == 0 {
			pass.Report(arg, "sentinel %s passed to fmt.Errorf without %%w loses its identity; wrap with %%w", sname)
		}
	}
}

// sentinelRef reports whether the expression references a sentinel error by
// naming convention: an identifier or selector whose name matches ErrXxx.
// The bare lowercase "err" variable does not match.
func sentinelRef(expr ast.Expr) (string, bool) {
	switch v := expr.(type) {
	case *ast.Ident:
		if isSentinelName(v.Name) {
			return v.Name, true
		}
	case *ast.SelectorExpr:
		if isSentinelName(v.Sel.Name) {
			if id, ok := v.X.(*ast.Ident); ok {
				return id.Name + "." + v.Sel.Name, true
			}
			return v.Sel.Name, true
		}
	}
	return "", false
}

func isSentinelName(name string) bool {
	if !strings.HasPrefix(name, "Err") || len(name) < 4 {
		return false
	}
	c := name[3]
	return c >= 'A' && c <= 'Z'
}
