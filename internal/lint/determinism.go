package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismScope are the import-path segments of the packages whose
// output must be byte-deterministic from a seed: the generator core, the
// query model, the dataset analyzer, the language translators, the
// synthetic dataset sources, the fault injector, the shared scan kernel,
// and the columnar shard store (zone maps feed pruning decisions, which
// feed scan counters in benchmark output). The harness and the engines
// legitimately read wall clocks (they measure); these packages must not.
// The jobqueue and the web service are in scope too: both inject clocks
// (Options.Now, Server latencies) and every residual wall-clock read must
// carry an explained //lint:ignore, so new ones can't creep in silently.
// The load generator's virtual-time path (Simulate) must be byte-identical
// under a seed; its one sanctioned wall-clock read (the realtime Run base)
// carries a //lint:ignore.
var DeterminismScope = []string{
	"internal/core",
	"internal/query",
	"internal/analyze",
	"internal/langs",
	"internal/datasets",
	"internal/faultsim",
	"internal/engine/scan",
	"internal/shard",
	"internal/jobqueue",
	"internal/loadgen",
	"cmd/betze-web",
}

// globalRandFuncs are the package-level math/rand functions backed by the
// process-global, time-seeded source. rand.New and rand.NewSource are the
// sanctioned alternative and are absent deliberately.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// determinism flags wall-clock and ambient-randomness escapes in the
// packages every byte of benchmark output must be reproducible from:
// time.Now, the global math/rand functions, and map iterations whose order
// can leak into output (a range over a map with no subsequent sort in the
// same function).
type determinism struct {
	scope []string
}

// NewDeterminism returns the determinism analyzer restricted to packages
// whose import path contains one of the scope segments; an empty scope
// checks every package (used by fixture tests).
func NewDeterminism(scope ...string) Analyzer { return &determinism{scope: scope} }

func (d *determinism) Name() string { return "determinism" }
func (d *determinism) Doc() string {
	return "seeded packages must not read wall clocks, global randomness, or map order"
}

func (d *determinism) Run(pass *Pass) {
	if len(d.scope) > 0 && !pathHasAny(pass.Pkg.Path, d.scope) {
		return
	}
	for _, f := range pass.Pkg.Files {
		aliases := importAliases(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				path, name, ok := pkgFuncCall(aliases, v)
				if !ok {
					return true
				}
				if path == "time" && name == "Now" {
					pass.Report(v, "time.Now() in a deterministic path; inject a clock or derive timestamps from the seed")
				}
				if path == "math/rand" && globalRandFuncs[name] {
					pass.Report(v, "global math/rand.%s uses the ambient source; use rand.New(rand.NewSource(seed))", name)
				}
			case *ast.FuncDecl:
				if v.Body != nil {
					d.checkMapRanges(pass, v.Body)
				}
				// FuncLits are visited through the enclosing declaration's
				// body; don't descend twice.
			}
			return true
		})
	}
}

// orderSinkCalls are selector names through which an iteration's order can
// reach benchmark output: writer methods, printers, and the obs trace
// recorder.
var orderSinkCalls = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Record": true,
}

// checkMapRanges flags range statements over map-typed expressions whose
// body feeds an order-sensitive sink — appends to a slice, writes to a
// writer or builder, records a trace event, sends on a channel — unless the
// function later sorts (any sort.* or slices.* call after the loop counts:
// the collect-keys-then-sort idiom). Map-to-map transforms iterate in
// arbitrary order harmlessly and are not flagged. Expressions whose type
// the lenient checker could not resolve are skipped: no type, no finding.
func (d *determinism) checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			ranges = append(ranges, r)
		}
		return true
	})
	if len(ranges) == 0 {
		return
	}
	var sortCalls []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
				sortCalls = append(sortCalls, call)
			}
		}
		return true
	})
	for _, r := range ranges {
		tv, ok := info.Types[r.X]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		if !orderSensitive(r.Body) {
			continue
		}
		sorted := false
		for _, c := range sortCalls {
			if c.Pos() > r.End() {
				sorted = true
				break
			}
		}
		if !sorted {
			pass.Report(r, "map iteration order can leak into deterministic output; collect keys and sort, or //lint:ignore with a reason")
		}
	}
}

// orderSensitive reports whether the loop body contains a sink whose result
// depends on iteration order.
func orderSensitive(body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			switch fun := v.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					found = true
				}
			case *ast.SelectorExpr:
				if orderSinkCalls[fun.Sel.Name] || strings.HasPrefix(fun.Sel.Name, "Write") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
