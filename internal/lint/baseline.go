package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// Baseline is a multiset of accepted findings, keyed by (file, analyzer,
// message). Line and column are deliberately not part of the key: a
// baseline must survive unrelated edits that shift code up or down, or it
// silently expires the moment anyone touches the file above a finding.
type Baseline map[string]int

func baselineKey(d Diagnostic) string {
	return d.File + "\x00" + d.Analyzer + "\x00" + d.Message
}

// ReadBaseline parses a baseline file — the JSON array WriteJSON emits, so
// capturing a baseline is just `betze-lint -format=json > lint.baseline`.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var diags []Diagnostic
	if err := json.NewDecoder(r).Decode(&diags); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline: %w", err)
	}
	b := make(Baseline, len(diags))
	for _, d := range diags {
		b[baselineKey(d)]++
	}
	return b, nil
}

// FilterBaseline returns the findings not covered by the baseline,
// count-aware: a baseline holding two occurrences of a key absorbs two
// findings with that key and surfaces the third. The input's sorted order
// is preserved in the output.
func FilterBaseline(diags []Diagnostic, b Baseline) []Diagnostic {
	if len(b) == 0 {
		return diags
	}
	remaining := make(Baseline, len(b))
	for k, n := range b {
		remaining[k] = n
	}
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if k := baselineKey(d); remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}
