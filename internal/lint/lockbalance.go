package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// lockbalance checks mutex discipline per function with a may-held forward
// dataflow over the CFG:
//
//   - every Lock()/RLock() must be paired with an Unlock()/RUnlock() on the
//     same receiver on every path to a return (a deferred unlock satisfies
//     all paths at once and is the preferred idiom);
//   - no lock may be held — deferred release included — across a blocking
//     point: a journal AppendSync, a file Sync, a channel send or receive
//     (ctx.Done() receives included), a blocking select, a WaitGroup or
//     sync.Cond Wait, or a time.Sleep. A goroutine parked on any of these
//     while holding the lock stalls every other critical section;
//   - mutex values must not be copied: a copied lock guards nothing. The
//     check is syntactic — variables and fields declared with sync.Mutex /
//     sync.RWMutex type syntax are tracked per file (the lenient loader has
//     no type information for the standard library).
//
// Lock identity is the rendered receiver expression ("mu", "q.mu"), which
// is exact within one function — the analysis is intra-procedural, so a
// helper that locks on behalf of its caller is out of scope by design (and
// jobqueue's journal-under-mutex helper stays legal because of it).
type lockbalance struct {
	scope []string
}

// NewLockbalance returns the lockbalance analyzer restricted to packages
// whose import path contains one of the scope segments; an empty scope
// checks every package.
func NewLockbalance(scope ...string) Analyzer { return &lockbalance{scope: scope} }

func (l *lockbalance) Name() string { return "lockbalance" }
func (l *lockbalance) Doc() string {
	return "locks must be released on all paths, never copied, never held across blocking points"
}

// lockState is one lock's position in the may-held lattice.
type lockState int

const (
	lockHeld     lockState = iota // locked, no release scheduled
	lockDeferred                  // locked, a deferred unlock will release at return
)

// lockFact maps lock keys to their may-held state; absent means free.
type lockFact map[string]lockState

func lockJoin(a, b lockFact) lockFact {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(lockFact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if cur, ok := out[k]; !ok {
			out[k] = v
		} else if v == lockHeld || cur == lockHeld {
			// Plain held is the worse state: a path without the deferred
			// release reaches the exit still holding.
			out[k] = lockHeld
		}
	}
	return out
}

func lockEqual(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// unlockOf pairs the acquire method with its release.
var unlockOf = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// blockingCalls are method names whose call parks the goroutine (or, for
// AppendSync/Sync, blocks on a disk fsync) — poison while a lock is held.
var blockingCalls = map[string]bool{
	"AppendSync": true,
	"Sync":       true,
	"Wait":       true,
	"Sleep":      true,
}

func (l *lockbalance) Run(pass *Pass) {
	if len(l.scope) > 0 && !pathHasAny(pass.Pkg.Path, l.scope) {
		return
	}
	for _, f := range pass.Pkg.Files {
		l.checkCopies(pass, f)
		inspectFuncs(f, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
			l.checkBody(pass, body)
		})
	}
}

// checkBody runs the may-held analysis over one function body.
func (l *lockbalance) checkBody(pass *Pass, body *ast.BlockStmt) {
	// Fast path: no Lock/RLock call, nothing to track.
	if !hasLockCall(body) {
		return
	}
	g := BuildCFG(body)
	// Comm statements of select clauses don't block by themselves — the
	// select header decides (and is reported when it has no default), so the
	// per-clause send/receive must not be double-reported.
	commStmts := map[ast.Stmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					commStmts[cc.Comm] = true
				}
			}
		}
		return true
	})
	transfer := func(s ast.Stmt, f lockFact) lockFact {
		out, copied := f, false
		mutate := func() lockFact {
			if !copied {
				cp := make(lockFact, len(f)+1)
				for k, v := range f {
					cp[k] = v
				}
				out, copied = cp, true
			}
			return out
		}
		if d, isDefer := s.(*ast.DeferStmt); isDefer {
			if recv, name, _, ok := selCall(d.Call); ok {
				if name == "Unlock" || name == "RUnlock" {
					if key := exprKey(recv); key != "" {
						k := lockKey(key, name == "RUnlock")
						if _, held := out[k]; held {
							mutate()[k] = lockDeferred
						}
					}
				}
			}
			return out
		}
		inspectOwned(s, func(n ast.Node) bool {
			recv, name, _, ok := selCall(n)
			if !ok {
				return true
			}
			key := exprKey(recv)
			if key == "" {
				return true
			}
			switch name {
			case "Lock", "RLock":
				mutate()[lockKey(key, name == "RLock")] = lockHeld
			case "Unlock", "RUnlock":
				delete(mutate(), lockKey(key, name == "RUnlock"))
			}
			return true
		})
		return out
	}
	in := ForwardFlow(g, Flow[lockFact]{
		Entry:    lockFact{},
		Top:      lockFact{},
		Join:     lockJoin,
		Equal:    lockEqual,
		Transfer: transfer,
	})
	WalkFacts(g, in, transfer, func(s ast.Stmt, f lockFact) {
		// Unreleased at exit: a return reached while a lock is plain-held.
		if ret, isRet := s.(*ast.ReturnStmt); isRet {
			for _, key := range heldKeys(f, lockHeld) {
				pass.Report(ret, "%s is still locked at this return on some path; unlock before returning (prefer defer %s.Unlock())", displayKey(key), baseKey(key))
			}
			return
		}
		if len(f) == 0 || commStmts[s] {
			return
		}
		l.checkBlocking(pass, s, f)
	})
	// The implicit fall-off-the-end return: facts flowing into Exit.
	exitFact := lockFact{}
	first := true
	for _, p := range g.Exit.Preds {
		// Recompute the predecessor's OUT by replaying from IN.
		o := in[p]
		for _, s := range p.Stmts {
			o = transfer(s, o)
		}
		// Returns and panics already reported above carry their own exits;
		// only blocks falling off the end matter here.
		if endsExplicitly(p) {
			continue
		}
		if first {
			exitFact, first = o, false
		} else {
			exitFact = lockJoin(exitFact, o)
		}
	}
	if !first {
		for _, key := range heldKeys(exitFact, lockHeld) {
			pass.ReportPos(body.Rbrace, "%s is still locked when the function falls off the end on some path; unlock it (prefer defer %s.Unlock())", displayKey(key), baseKey(key))
		}
	}
}

// checkBlocking reports blocking points reached with any lock may-held.
func (l *lockbalance) checkBlocking(pass *Pass, s ast.Stmt, f lockFact) {
	keys := heldKeys(f, lockHeld, lockDeferred)
	if len(keys) == 0 {
		return
	}
	report := func(n ast.Node, what string) {
		pass.Report(n, "%s while %s is held blocks every other critical section; release the lock first or //lint:ignore lockbalance with a reason", what, displayKey(keys[0]))
	}
	switch v := s.(type) {
	case *ast.SendStmt:
		report(v, "channel send")
		return
	case *ast.SelectStmt:
		if !selectHasDefault(v) {
			report(v, "blocking select")
		}
		return
	}
	inspectOwned(s, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				report(v, "channel receive")
				return false
			}
		case *ast.CallExpr:
			if recv, name, _, ok := selCall(v); ok && blockingCalls[name] {
				// x.Wait()/x.Sync() on the lock's own key would be a
				// sync.Cond-style pairing; still blocking, still flagged.
				_ = recv
				report(v, name+"()")
				return false
			}
		}
		return true
	})
}

// checkCopies flags copies of variables or fields declared with
// sync.Mutex/sync.RWMutex type syntax: by-value parameters and results,
// and assignments whose right-hand side is such a variable or field.
func (l *lockbalance) checkCopies(pass *Pass, f *ast.File) {
	aliases := importAliases(f)
	syncAlias := ""
	for alias, path := range aliases {
		if path == "sync" {
			syncAlias = alias
		}
	}
	if syncAlias == "" {
		return
	}
	isMutexType := func(e ast.Expr) bool {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Name == syncAlias && (sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex")
	}

	// Collect the names declared with a by-value mutex type: package/local
	// vars and struct fields.
	mutexNames := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Field:
			if isMutexType(v.Type) {
				for _, name := range v.Names {
					mutexNames[name.Name] = true
				}
			}
		case *ast.ValueSpec:
			if v.Type != nil && isMutexType(v.Type) {
				for _, name := range v.Names {
					mutexNames[name.Name] = true
				}
			}
		}
		return true
	})

	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Type.Params != nil {
				for _, p := range v.Type.Params.List {
					if isMutexType(p.Type) {
						pass.Report(p, "sync.%s passed by value; a copied lock guards nothing — pass a pointer", typeName(p.Type))
					}
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range v.Rhs {
				if name := mutexOperand(rhs, mutexNames); name != "" {
					pass.Report(rhs, "assignment copies lock value %q; a copied lock guards nothing — use a pointer", name)
				}
			}
		case *ast.CallExpr:
			if _, _, _, isMethod := selCall(v); isMethod {
				return true // method calls on the mutex itself are fine
			}
			for _, arg := range v.Args {
				if name := mutexOperand(arg, mutexNames); name != "" {
					pass.Report(arg, "call copies lock value %q into a parameter; pass a pointer", name)
				}
			}
		}
		return true
	})
}

// mutexOperand reports the name of a by-value use of a tracked mutex — a
// bare ident or field selector, not an address-of and not a method call.
func mutexOperand(e ast.Expr, mutexNames map[string]bool) string {
	switch v := e.(type) {
	case *ast.Ident:
		if mutexNames[v.Name] {
			return v.Name
		}
	case *ast.SelectorExpr:
		if mutexNames[v.Sel.Name] {
			if key := exprKey(v); key != "" {
				return key
			}
			return v.Sel.Name
		}
	}
	return ""
}

func typeName(e ast.Expr) string {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Mutex"
}

// lockKey distinguishes the read and write sides of an RWMutex.
func lockKey(key string, read bool) string {
	if read {
		return key + "\x00r"
	}
	return key
}

func baseKey(key string) string {
	return strings.TrimSuffix(key, "\x00r")
}

func displayKey(key string) string {
	if strings.HasSuffix(key, "\x00r") {
		return baseKey(key) + " (read lock)"
	}
	return key
}

// heldKeys lists the lock keys in any of the given states, sorted for
// deterministic reports.
func heldKeys(f lockFact, states ...lockState) []string {
	var keys []string
	for k, v := range f {
		for _, st := range states {
			if v == st {
				keys = append(keys, k)
				break
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// hasLockCall is the cheap pre-filter for the dataflow pass.
func hasLockCall(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, name, _, ok := selCall(n); ok && (name == "Lock" || name == "RLock") {
			found = true
		}
		return !found
	})
	return found
}

// endsExplicitly reports whether the block's last statement is a return or
// a panic (so the fall-off-the-end exit check skips it).
func endsExplicitly(b *Block) bool {
	if len(b.Stmts) == 0 {
		return false
	}
	switch last := b.Stmts[len(b.Stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		return isPanicCall(last.X)
	}
	return false
}

// selectHasDefault reports whether a select has a default clause (making it
// non-blocking).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
