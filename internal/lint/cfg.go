package lint

import (
	"go/ast"
	"go/token"
)

// This file is the intra-procedural control-flow layer the concurrency
// analyzers (lockbalance, wgdiscipline, journalorder) run on: a basic-block
// CFG over one function body, dominance, and (in dataflow.go) a small
// forward dataflow framework. It deliberately stays on go/ast — no SSA, no
// x/tools — because nothing may be installed into the build image and the
// analyses only need statement-level precision.
//
// Partition contract: every ast.Stmt of the body (excluding statements
// inside nested *ast.FuncLit bodies, which are their own functions with
// their own CFGs, and excluding the clause-container *ast.BlockStmt of
// switch/type-switch/select, which is pure brace syntax) is appended to
// exactly one block. Compound statements
// live in the block that begins evaluating them (their header), while
// their children are distributed into the blocks control actually reaches:
// an *ast.IfStmt sits in the block evaluating its condition, its Init
// statement precedes it there, and the then/else bodies occupy successor
// blocks. A statement-level transfer function must therefore only interpret
// the parts of a compound statement its own block evaluates — see OwnedExprs.

// Block is one basic block: a maximal straight-line statement sequence.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0).
	Index int
	// Stmts are the statements evaluated in this block, in order.
	Stmts []ast.Stmt
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every block; Blocks[0] is the entry.
	Blocks []*Block
	// Entry is the block function execution starts in.
	Entry *Block
	// Exit is the synthetic (statement-less) block every return, panic and
	// the final fallthrough edge to.
	Exit *Block
}

// BlockOf returns the block a statement was placed in, or nil for
// statements outside the body (e.g. inside a nested function literal).
func (g *CFG) BlockOf(s ast.Stmt) *Block {
	for _, b := range g.Blocks {
		for _, bs := range b.Stmts {
			if bs == s {
				return b
			}
		}
	}
	return nil
}

// cfgBuilder carries the state of one build: the block under construction,
// the stack of enclosing breakable/continuable constructs, and the goto
// label table.
type cfgBuilder struct {
	g      *CFG
	cur    *Block // nil while control cannot reach the next statement
	frames []cfgFrame
	labels map[string]*Block
	// fallthroughTo is the next case-clause block while building a switch
	// case body (the target of a fallthrough statement).
	fallthroughTo *Block
}

// cfgFrame is one enclosing construct a break/continue can target.
type cfgFrame struct {
	label string
	brk   *Block // break target (loops, switch, select)
	cont  *Block // continue target (loops only)
}

// BuildCFG constructs the CFG of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &cfgBuilder{g: g, labels: make(map[string]*Block)}
	g.Entry = b.newBlock()
	g.Exit = &Block{} // indexed last, after every real block
	b.cur = g.Entry
	for _, s := range body.List {
		b.stmt(s, "")
	}
	if b.cur != nil {
		b.edge(b.cur, g.Exit)
	}
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// reach makes sure statements have a block to land in: after a terminator
// (return, break, goto) the next statement starts a fresh, edge-less block
// so dead code still satisfies the partition contract.
func (b *cfgBuilder) reach() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

// labelBlock returns (creating on demand) the block a label names, so a
// forward goto can target a label not yet visited.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// stmt appends one statement to the graph. label is the name of the
// immediately enclosing LabeledStmt ("" otherwise), handed to loops and
// switches so labelled break/continue resolve.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch v := s.(type) {
	case *ast.BlockStmt:
		b.reach().Stmts = append(b.cur.Stmts, v)
		for _, inner := range v.List {
			b.stmt(inner, "")
		}

	case *ast.LabeledStmt:
		lb := b.labelBlock(v.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, lb)
		}
		b.cur = lb
		b.cur.Stmts = append(b.cur.Stmts, v)
		b.stmt(v.Stmt, v.Label.Name)

	case *ast.ReturnStmt:
		b.reach().Stmts = append(b.cur.Stmts, v)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.reach().Stmts = append(b.cur.Stmts, v)
		b.branch(v)

	case *ast.IfStmt:
		if v.Init != nil {
			b.stmt(v.Init, "")
		}
		header := b.reach()
		header.Stmts = append(header.Stmts, v)
		then := b.newBlock()
		b.edge(header, then)
		join := b.newBlock()
		b.cur = then
		b.stmt(v.Body, "")
		if b.cur != nil {
			b.edge(b.cur, join)
		}
		if v.Else != nil {
			els := b.newBlock()
			b.edge(header, els)
			b.cur = els
			b.stmt(v.Else, "")
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		} else {
			b.edge(header, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if v.Init != nil {
			b.stmt(v.Init, "")
		}
		header := b.reach()
		header.Stmts = append(header.Stmts, v)
		cond := b.newBlock()
		b.edge(header, cond)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(cond, body)
		if v.Cond != nil {
			b.edge(cond, after)
		}
		cont := cond
		var post *Block
		if v.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.frames = append(b.frames, cfgFrame{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmt(v.Body, "")
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		if post != nil {
			b.cur = post
			b.stmt(v.Post, "")
			if b.cur != nil {
				b.edge(b.cur, cond)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.RangeStmt:
		header := b.reach()
		header.Stmts = append(header.Stmts, v)
		head := b.newBlock() // the per-element "more?" check
		b.edge(header, head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.frames = append(b.frames, cfgFrame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(v.Body, "")
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if v.Init != nil {
			b.stmt(v.Init, "")
		}
		b.caseDispatch(v, v.Body, label, true)

	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			b.stmt(v.Init, "")
		}
		if v.Assign != nil {
			b.stmt(v.Assign, "")
		}
		b.caseDispatch(v, v.Body, label, false)

	case *ast.SelectStmt:
		header := b.reach()
		header.Stmts = append(header.Stmts, v)
		after := b.newBlock()
		b.frames = append(b.frames, cfgFrame{label: label, brk: after})
		for _, clause := range v.Body.List {
			cc := clause.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(header, cb)
			b.cur = cb
			b.cur.Stmts = append(b.cur.Stmts, cc)
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			for _, inner := range cc.Body {
				b.stmt(inner, "")
			}
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		// select{} (or every case terminating) never falls through: after
		// simply keeps zero predecessors, and any trailing statements land
		// in it as dead code, preserving the partition contract.
		b.cur = after

	case *ast.ExprStmt:
		b.reach().Stmts = append(b.cur.Stmts, v)
		if isPanicCall(v.X) {
			b.edge(b.cur, b.g.Exit)
			b.cur = nil
		}

	default:
		// Assignments, declarations, sends, inc/dec, go, defer, empty:
		// straight-line statements.
		b.reach().Stmts = append(b.cur.Stmts, s)
	}
}

// caseDispatch builds the clause fan-out shared by switch and type switch.
// The header has an edge to every clause and — when no default exists — to
// the after block. fallthrough edges to the next clause's block.
func (b *cfgBuilder) caseDispatch(sw ast.Stmt, body *ast.BlockStmt, label string, allowFallthrough bool) {
	header := b.reach()
	header.Stmts = append(header.Stmts, sw)
	after := b.newBlock()
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	blocks := make([]*Block, 0, len(body.List))
	hasDefault := false
	for _, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		clauses = append(clauses, cc)
		cb := b.newBlock()
		blocks = append(blocks, cb)
		b.edge(header, cb)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(header, after)
	}
	b.frames = append(b.frames, cfgFrame{label: label, brk: after})
	for i, cc := range clauses {
		b.cur = blocks[i]
		b.cur.Stmts = append(b.cur.Stmts, cc)
		savedFT := b.fallthroughTo
		if allowFallthrough && i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		for _, inner := range cc.Body {
			b.stmt(inner, "")
		}
		b.fallthroughTo = savedFT
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// branch resolves break/continue/goto/fallthrough to its target edge.
func (b *cfgBuilder) branch(v *ast.BranchStmt) {
	name := ""
	if v.Label != nil {
		name = v.Label.Name
	}
	switch v.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.brk == nil {
				continue
			}
			if name != "" && f.label != name {
				continue
			}
			b.edge(b.cur, f.brk)
			b.cur = nil
			return
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.cont == nil {
				continue
			}
			if name != "" && f.label != name {
				continue
			}
			b.edge(b.cur, f.cont)
			b.cur = nil
			return
		}
	case token.GOTO:
		if name != "" {
			b.edge(b.cur, b.labelBlock(name))
		}
		b.cur = nil
		return
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.edge(b.cur, b.fallthroughTo)
		}
		b.cur = nil
		return
	}
	// A break/continue with no matching frame (malformed source the parser
	// tolerated): treat as a terminator so analysis stays conservative.
	b.cur = nil
}

// isPanicCall reports whether the expression is a bare panic(...) call.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// OwnedExprs returns the expression parts of a statement that are evaluated
// in the block the statement itself was placed in. For simple statements
// that is the whole statement; for compound statements only the header
// expression — an *ast.IfStmt's block evaluates the condition, not the
// branch bodies, which live in successor blocks (and whose Init statements
// were appended to the header block as statements of their own). Transfer
// functions must interpret exactly these parts and nothing deeper, or a
// call inside an unexecuted branch would leak into the header's facts.
func OwnedExprs(s ast.Stmt) []ast.Node {
	switch v := s.(type) {
	case *ast.IfStmt:
		if v.Cond != nil {
			return []ast.Node{v.Cond}
		}
		return nil
	case *ast.ForStmt:
		// The condition is evaluated in its own loop-head block that carries
		// no statement; attributing it to the header would be wrong more
		// often than helpful, so for-conditions are not owned by anything.
		return nil
	case *ast.RangeStmt:
		if v.X != nil {
			return []ast.Node{v.X}
		}
		return nil
	case *ast.SwitchStmt:
		if v.Tag != nil {
			return []ast.Node{v.Tag}
		}
		return nil
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		return nil
	case *ast.CaseClause:
		out := make([]ast.Node, 0, len(v.List))
		for _, e := range v.List {
			out = append(out, e)
		}
		return out
	case *ast.CommClause:
		return nil // the comm statement was appended separately
	case *ast.LabeledStmt, *ast.BlockStmt:
		return nil // pure structure; children are placed individually
	default:
		return []ast.Node{s}
	}
}

// Dominators computes the immediate-dominator relation with the classic
// iterative algorithm over a reverse-postorder numbering (Cooper, Harvey,
// Kennedy). The returned slice maps Block.Index to the immediate
// dominator's index; the entry maps to itself and unreachable blocks to -1.
func (g *CFG) Dominators() []int {
	// Reverse postorder over the reachable subgraph.
	rpo := make([]*Block, 0, len(g.Blocks))
	seen := make([]bool, len(g.Blocks))
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		rpo = append(rpo, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	order := make([]int, len(g.Blocks)) // block index -> rpo position
	for i, b := range rpo {
		order[b.Index] = i
	}

	idom := make([]int, len(g.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	idom[g.Entry.Index] = g.Entry.Index
	intersect := func(a, bIdx int) int {
		for a != bIdx {
			for order[a] > order[bIdx] {
				a = idom[a]
			}
			for order[bIdx] > order[a] {
				bIdx = idom[bIdx]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			newIdom := -1
			for _, p := range b.Preds {
				if idom[p.Index] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p.Index
				} else {
					newIdom = intersect(newIdom, p.Index)
				}
			}
			if newIdom != -1 && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b (every path from the
// entry to b passes through a). A block dominates itself.
func (g *CFG) Dominates(idom []int, a, b *Block) bool {
	if idom[b.Index] == -1 {
		return false // unreachable: no path to dominate
	}
	for x := b.Index; ; x = idom[x] {
		if x == a.Index {
			return true
		}
		if idom[x] == x || idom[x] == -1 {
			return false
		}
	}
}
