package lint

import (
	"go/ast"
)

// wgdiscipline enforces the three WaitGroup rules that make Wait() a real
// barrier rather than a race:
//
//  1. Add must dominate the go statement it accounts for — Add after (or
//     merely parallel to) the spawn lets Wait return before the goroutine
//     is counted;
//  2. Add must never run inside the spawned goroutine itself — the
//     canonical misuse, racing Add against Wait;
//  3. a goroutine that is counted (wg.Done appears in its body) must reach
//     Done on every path, preferably via defer — a conditional Done
//     deadlocks Wait on the paths that skip it.
//
// Rules 1 and 2 use the dominator tree of the spawning function's CFG;
// rule 3 is a must-reach analysis over the goroutine body's own CFG, where
// a deferred Done satisfies every path by construction. Matching is by
// method name (Add/Done/Wait) on the same receiver key — the lenient
// loader has no sync.WaitGroup type information — so a receiver that never
// calls Add anywhere in the function is out of scope.
type wgdiscipline struct {
	scope []string
}

// NewWgdiscipline returns the wgdiscipline analyzer restricted to packages
// whose import path contains one of the scope segments; an empty scope
// checks every package.
func NewWgdiscipline(scope ...string) Analyzer { return &wgdiscipline{scope: scope} }

func (w *wgdiscipline) Name() string { return "wgdiscipline" }
func (w *wgdiscipline) Doc() string {
	return "WaitGroup Add dominates its go statement; Done on all goroutine paths; no Add inside the goroutine"
}

func (w *wgdiscipline) Run(pass *Pass) {
	if len(w.scope) > 0 && !pathHasAny(pass.Pkg.Path, w.scope) {
		return
	}
	for _, f := range pass.Pkg.Files {
		inspectFuncs(f, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
			w.checkBody(pass, body)
		})
	}
}

// wgCall matches x.Add(...), x.Done(), x.Wait() and returns the receiver
// key ("wg", "p.wg") and the method name.
func wgCall(n ast.Node) (key, method string, ok bool) {
	recv, name, _, isSel := selCall(n)
	if !isSel || (name != "Add" && name != "Done" && name != "Wait") {
		return "", "", false
	}
	key = exprKey(recv)
	if key == "" {
		return "", "", false
	}
	return key, name, true
}

// checkBody applies all three rules to one function body. inspectFuncs
// already recurses into nested literals, so only this body's own
// statements (not FuncLit interiors) are considered for rules 1 and 2.
func (w *wgdiscipline) checkBody(pass *Pass, body *ast.BlockStmt) {
	g := BuildCFG(body)

	// Collect, per WaitGroup key, the sites of Add calls, and the go
	// statements. Sites carry the statement index inside their block so
	// same-block ordering (Add after go in straight-line code) is caught —
	// block-level dominance alone would miss it.
	type site struct {
		block *Block
		idx   int
	}
	addSites := map[string][]site{} // key -> sites of x.Add(...)
	type spawn struct {
		gs    *ast.GoStmt
		block *Block
		idx   int
		lit   *ast.FuncLit
	}
	var spawns []spawn
	for _, b := range g.Blocks {
		for i, s := range b.Stmts {
			if gs, isGo := s.(*ast.GoStmt); isGo {
				lit, _ := gs.Call.Fun.(*ast.FuncLit)
				spawns = append(spawns, spawn{gs: gs, block: b, idx: i, lit: lit})
			}
			inspectOwned(s, func(n ast.Node) bool {
				if key, method, ok := wgCall(n); ok && method == "Add" {
					addSites[key] = append(addSites[key], site{block: b, idx: i})
				}
				return true
			})
		}
	}

	var idom []int
	for _, sp := range spawns {
		// Which WaitGroups is this goroutine counted against? For a spawned
		// literal: keys it calls Done on. For go f(&wg): keys passed as
		// arguments (the callee is assumed to Done). A goroutine that only
		// calls Wait on a key is a joiner, not counted, and needs no Add.
		var keys []string
		if sp.lit != nil {
			for key := range addSites {
				if callsDone(sp.lit.Body, key) {
					keys = append(keys, key)
				}
			}
		} else {
			for key := range addSites {
				for _, arg := range sp.gs.Call.Args {
					if mentionsKey(arg, key) {
						keys = append(keys, key)
						break
					}
				}
			}
		}
		for _, key := range keys {
			// Rule 1: some Add for this key dominates the spawn — a strictly
			// dominating block, or an earlier statement in the same block.
			if idom == nil {
				idom = g.Dominators()
			}
			dominated := false
			for _, as := range addSites[key] {
				if as.block == sp.block {
					dominated = dominated || as.idx < sp.idx
				} else if g.Dominates(idom, as.block, sp.block) {
					dominated = true
				}
			}
			if !dominated {
				pass.Report(sp.gs, "go statement for WaitGroup %q is not dominated by %s.Add: Wait may return before this goroutine is counted", key, key)
			}
		}
		if sp.lit == nil {
			continue
		}
		// Rule 2: no Add inside the spawned goroutine on a captured
		// WaitGroup — Add-from-inside races Wait. A WaitGroup the goroutine
		// declares for its own sub-goroutines is fine.
		ast.Inspect(sp.lit.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if key, method, ok := wgCall(n); ok && method == "Add" && !declaresIdent(sp.lit.Body, baseIdent(key)) {
				pass.Report(n, "WaitGroup %s.Add inside the spawned goroutine races Wait; Add before the go statement", key)
			}
			return true
		})
		// Rule 3: if the body calls Done on some key, Done must be reached
		// on every path out of the body.
		w.checkDoneAllPaths(pass, sp.gs, sp.lit.Body)
	}
}

// checkDoneAllPaths verifies that every Done-calling goroutine body reaches
// Done on all paths. A defer x.Done() anywhere satisfies all paths; an
// inline Done is must-reach-analyzed over the body's CFG.
func (w *wgdiscipline) checkDoneAllPaths(pass *Pass, at ast.Node, body *ast.BlockStmt) {
	doneKeys := map[string]bool{}
	deferredKeys := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if ds, isDefer := n.(*ast.DeferStmt); isDefer {
			if key, method, ok := wgCall(ds.Call); ok && method == "Done" {
				deferredKeys[key] = true
			}
			return true
		}
		if key, method, ok := wgCall(n); ok && method == "Done" {
			doneKeys[key] = true
		}
		return true
	})
	for key := range deferredKeys {
		delete(doneKeys, key) // deferred Done runs on every exit
	}
	if len(doneKeys) == 0 {
		return
	}

	g := BuildCFG(body)
	for key := range doneKeys {
		// Must analysis: fact = "Done(key) definitely executed".
		in := ForwardFlow(g, Flow[bool]{
			Entry: false,
			Top:   true,
			Join:  func(a, b bool) bool { return a && b },
			Equal: func(a, b bool) bool { return a == b },
			Transfer: func(s ast.Stmt, f bool) bool {
				if f {
					return true
				}
				if _, isDefer := s.(*ast.DeferStmt); isDefer {
					return f // deferred calls were handled above
				}
				done := false
				inspectOwned(s, func(n ast.Node) bool {
					if k, method, ok := wgCall(n); ok && method == "Done" && k == key {
						done = true
					}
					return !done
				})
				return f || done
			},
		})
		// Every edge into Exit must carry Done-executed. Replay each
		// predecessor block to its OUT fact.
		for _, p := range g.Exit.Preds {
			f := in[p]
			var last ast.Stmt
			for _, s := range p.Stmts {
				last = s
				if f {
					break
				}
				done := false
				inspectOwned(s, func(n ast.Node) bool {
					if k, method, ok := wgCall(n); ok && method == "Done" && k == key {
						done = true
					}
					return !done
				})
				f = f || done
			}
			if !f {
				n := ast.Node(at)
				if last != nil {
					n = last
				}
				pass.Report(n, "goroutine calls %s.Done but a path exits without it, deadlocking Wait; use defer %s.Done()", key, key)
				break // one report per key is enough
			}
		}
	}
}

// baseIdent returns the leading identifier of a dotted key ("p.wg" -> "p").
func baseIdent(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '.' {
			return key[:i]
		}
	}
	return key
}

// declaresIdent reports whether the block declares name (var decl or :=)
// outside nested function literals.
func declaresIdent(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ValueSpec:
			for _, id := range v.Names {
				if id.Name == name {
					found = true
				}
			}
		case *ast.AssignStmt:
			if v.Tok.String() == ":=" {
				for _, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// callsDone reports whether the body calls key.Done(), inline or deferred,
// outside nested literals.
func callsDone(body *ast.BlockStmt, key string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if k, method, ok := wgCall(n); ok && method == "Done" && k == key {
			found = true
		}
		return !found
	})
	return found
}

// mentionsKey reports whether any expression inside n has the given exprKey.
func mentionsKey(n ast.Node, key string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if e, isExpr := c.(ast.Expr); isExpr && exprKey(e) == key {
			found = true
		}
		return !found
	})
	return found
}
