package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed and (best-effort) type-checked package.
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// Path is the package's import path within the module.
	Path string
	// Fset is the file set shared by every package of one load.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package (possibly incomplete).
	Types *types.Package
	// Info carries whatever type information the error-tolerant check
	// could establish. Analyzers must treat a missing entry as "unknown",
	// never as a violation.
	Info *types.Info
	// TypeErrors are the (expected) errors of the tolerant check; they
	// are informational and do not fail a lint run.
	TypeErrors []error
}

// Load parses and type-checks the module rooted at root. Test files and
// testdata directories are excluded: the invariants guard library and
// command code, and tests legitimately pin wall clocks, compare errors and
// invent metric names.
//
// Type checking is deliberately lenient. Nothing may be installed into the
// build image, so there is no export data and no x/tools loader; imports
// outside the module are satisfied by empty placeholder packages, while
// module-internal imports resolve to the real checked packages (packages
// are checked in dependency order). The result is full syntax for every
// file, complete type information for module-internal references, and
// "unknown" for the standard library — which the analyzers treat
// conservatively.
func Load(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	type parsed struct {
		dir     string
		path    string
		files   []*ast.File
		imports map[string]bool
	}
	byPath := make(map[string]*parsed)
	var order []string
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		p := &parsed{dir: dir, path: path, imports: make(map[string]bool)}
		p.files = files
		for _, f := range files {
			for _, imp := range f.Imports {
				if ip, err := strconv.Unquote(imp.Path.Value); err == nil {
					p.imports[ip] = true
				}
			}
		}
		byPath[path] = p
		order = append(order, path)
	}

	// Check in dependency order so module-internal imports resolve to real
	// packages. Go forbids import cycles, so a simple DFS suffices.
	imp := newModImporter()
	var pkgs []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		p, ok := byPath[path]
		if !ok || state[path] == 2 {
			return nil
		}
		if state[path] == 1 {
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = 1
		deps := make([]string, 0, len(p.imports))
		for ip := range p.imports {
			deps = append(deps, ip)
		}
		sort.Strings(deps)
		for _, ip := range deps {
			if err := visit(ip); err != nil {
				return err
			}
		}
		pkg := check(fset, p.dir, p.path, p.files, imp)
		imp.checked[p.path] = pkg.Types
		pkgs = append(pkgs, pkg)
		state[path] = 2
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads a single directory as a standalone package under the given
// import path — the entry point for analyzer fixture tests, whose testdata
// packages live outside any module tree.
func LoadDir(dir, path string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return check(fset, dir, path, files, newModImporter()), nil
}

// check runs the error-tolerant type check over one parsed package.
func check(fset *token.FileSet, dir, path string, files []*ast.File, imp types.Importer) *Package {
	pkg := &Package{Dir: dir, Path: path, Fset: fset, Files: files}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never returns a useful error beyond what the Error hook saw;
	// the (possibly incomplete) package is still valuable.
	pkg.Types, _ = conf.Check(path, fset, files, pkg.Info)
	return pkg
}

// modImporter resolves module-internal imports to already-checked packages
// and everything else (the standard library, since nothing external may be
// installed) to empty placeholders.
type modImporter struct {
	checked map[string]*types.Package
	fakes   map[string]*types.Package
}

func newModImporter() *modImporter {
	return &modImporter{
		checked: make(map[string]*types.Package),
		fakes:   make(map[string]*types.Package),
	}
}

func (m *modImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.checked[path]; ok && p != nil {
		return p, nil
	}
	if p, ok := m.fakes[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	// "go-isatty"-style names are not valid identifiers; normalise.
	name = strings.Map(func(r rune) rune {
		if r == '-' || r == '.' {
			return '_'
		}
		return r
	}, name)
	p := types.NewPackage(path, name)
	p.MarkComplete()
	m.fakes[path] = p
	return p, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs walks the tree collecting directories that hold Go files,
// skipping hidden directories and testdata.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && isLintedFile(e.Name()) {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func isLintedFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// parseDir parses the lintable files of one directory, sorted by name.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && isLintedFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}
