package lint_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/joda-explore/betze/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// loadFixture loads one testdata package. LoadDir is handed a relative
// directory, so every diagnostic carries a path relative to this package —
// exactly what the golden files record.
func loadFixture(t *testing.T, rel string) *lint.Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", rel)
	pkg, err := lint.LoadDir(dir, "fixture/"+filepath.ToSlash(rel))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg
}

func runFixture(t *testing.T, a lint.Analyzer, rel string) []lint.Diagnostic {
	t.Helper()
	pkg := loadFixture(t, rel)
	return lint.Run([]*lint.Package{pkg}, []lint.Analyzer{a})
}

// TestAnalyzerGolden runs each analyzer over its violating fixture and
// compares the text report against the golden file, then checks the clean
// fixture stays silent. Regenerate goldens with: go test ./internal/lint -run Golden -update
func TestAnalyzerGolden(t *testing.T) {
	cases := []struct {
		name     string
		analyzer lint.Analyzer
	}{
		// Fixture-wide scopes: determinism/atomicwrite with an empty scope
		// and ctxplumb with "" check every package, not just the repo paths.
		{"atomicwrite", lint.NewAtomicwrite()},
		{"determinism", lint.NewDeterminism()},
		{"errwrap", lint.NewErrwrap()},
		{"fsboundary", lint.NewFsboundary()},
		{"ctxplumb", lint.NewCtxplumb("")},
		{"obsvocab", lint.NewObsvocab()},
		{"closecheck", lint.NewClosecheck()},
		// The CFG/dataflow-backed concurrency analyzers, fixture-wide scope.
		{"lockbalance", lint.NewLockbalance()},
		{"goleak", lint.NewGoleak()},
		{"atomicmix", lint.NewAtomicmix()},
		{"wgdiscipline", lint.NewWgdiscipline()},
		{"journalorder", lint.NewJournalorder()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := runFixture(t, tc.analyzer, filepath.Join(tc.name, "bad"))
			if len(diags) == 0 {
				t.Fatal("bad fixture produced no findings")
			}
			for _, d := range diags {
				if d.Analyzer != tc.name {
					t.Errorf("finding from unexpected analyzer %q: %s", d.Analyzer, d)
				}
			}
			var buf bytes.Buffer
			if err := lint.WriteText(&buf, diags); err != nil {
				t.Fatalf("WriteText: %v", err)
			}
			golden := filepath.Join("testdata", "golden", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got := buf.String(); got != string(want) {
				t.Errorf("report differs from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}

			clean := runFixture(t, tc.analyzer, filepath.Join(tc.name, "clean"))
			if len(clean) != 0 {
				t.Errorf("clean fixture produced %d findings, want 0:", len(clean))
				for _, d := range clean {
					t.Errorf("  %s", d)
				}
			}
		})
	}
}
