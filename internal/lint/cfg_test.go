package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body snippet for CFG construction.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// bodyStmts collects every statement the partition contract covers: all
// statements under the body except the body block itself, anything inside
// nested function literals, and the clause-container block of
// switch/type-switch/select (pure brace syntax, never placed).
func bodyStmts(body *ast.BlockStmt) []ast.Stmt {
	clauseContainers := map[ast.Stmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SwitchStmt:
			clauseContainers[v.Body] = true
		case *ast.TypeSwitchStmt:
			clauseContainers[v.Body] = true
		case *ast.SelectStmt:
			clauseContainers[v.Body] = true
		}
		return true
	})
	var out []ast.Stmt
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if _, isLit := c.(*ast.FuncLit); isLit {
				return false
			}
			if s, isStmt := c.(ast.Stmt); isStmt && !clauseContainers[s] {
				out = append(out, s)
			}
			return true
		})
	}
	for _, s := range body.List {
		out = append(out, s)
		walk(s)
	}
	return out
}

// checkPartition asserts every statement lands in exactly one block.
func checkPartition(t *testing.T, g *CFG, body *ast.BlockStmt) {
	t.Helper()
	counts := map[ast.Stmt]int{}
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			counts[s]++
		}
	}
	for _, s := range bodyStmts(body) {
		switch counts[s] {
		case 1:
		case 0:
			t.Errorf("statement %T at %d not placed in any block", s, s.Pos())
		default:
			t.Errorf("statement %T at %d placed in %d blocks", s, s.Pos(), counts[s])
		}
	}
	if len(g.Exit.Stmts) != 0 {
		t.Errorf("exit block must stay synthetic, has %d statements", len(g.Exit.Stmts))
	}
}

func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
		// minBlocks sanity-checks the construction fanned out at all.
		minBlocks int
	}{
		{"straightline", `x := 1; y := x; _ = y`, 2},
		{"if", `x := 1
if x > 0 {
	x = 2
}
_ = x`, 4},
		{"ifelse", `x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`, 5},
		{"ifinit", `if x := 1; x > 0 {
	_ = x
}`, 4},
		{"for", `s := 0
for i := 0; i < 10; i++ {
	s += i
	if s > 5 {
		break
	}
	continue
}
_ = s`, 6},
		{"forever", `for {
	return
}`, 3},
		{"range", `s := 0
for i, v := range []int{1, 2} {
	s += i + v
}
_ = s`, 5},
		{"switch", `x := 1
switch x {
case 1:
	x = 2
	fallthrough
case 2:
	x = 3
default:
	x = 4
}
_ = x`, 6},
		{"typeswitch", `var v interface{} = 1
switch v.(type) {
case int:
	v = 2
}
_ = v`, 4},
		{"select", `ch := make(chan int)
select {
case v := <-ch:
	_ = v
default:
}`, 4},
		{"deferpanic", `defer println("done")
x := 1
if x > 0 {
	panic("boom")
}
_ = x`, 4},
		{"goto", `x := 0
loop:
	x++
	if x < 3 {
		goto loop
	}
_ = x`, 4},
		{"labeledbreak", `outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if i+j > 2 {
			break outer
		}
		continue outer
	}
}`, 8},
		{"funclit", `f := func() {
	return
}
f()`, 2},
		{"deadcode", `return
x := 1
_ = x`, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := parseBody(t, tc.body)
			g := BuildCFG(body)
			checkPartition(t, g, body)
			if len(g.Blocks) < tc.minBlocks {
				t.Errorf("got %d blocks, want at least %d", len(g.Blocks), tc.minBlocks)
			}
			if g.Entry != g.Blocks[0] {
				t.Errorf("entry is not Blocks[0]")
			}
			if g.Exit != g.Blocks[len(g.Blocks)-1] {
				t.Errorf("exit is not the last block")
			}
			// Edge symmetry: every succ edge has the matching pred edge.
			for _, b := range g.Blocks {
				for _, s := range b.Succs {
					if !containsBlock(s.Preds, b) {
						t.Errorf("block %d -> %d edge missing the pred back-reference", b.Index, s.Index)
					}
				}
			}
		})
	}
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// stmtBlock finds the block holding the statement matching pred.
func stmtBlock(t *testing.T, g *CFG, pred func(ast.Stmt) bool) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if pred(s) {
				return b
			}
		}
	}
	t.Fatalf("no block holds the wanted statement")
	return nil
}

// isAssignTo matches `name = ...` / `name := ...` statements.
func isAssignTo(name string) func(ast.Stmt) bool {
	return func(s ast.Stmt) bool {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == name
	}
}

func TestDominanceDiamond(t *testing.T) {
	body := parseBody(t, `
a := 1
if a > 0 {
	b := 2
	_ = b
} else {
	c := 3
	_ = c
}
d := 4
_ = d`)
	g := BuildCFG(body)
	idom := g.Dominators()

	header := stmtBlock(t, g, isAssignTo("a"))
	then := stmtBlock(t, g, isAssignTo("b"))
	els := stmtBlock(t, g, isAssignTo("c"))
	join := stmtBlock(t, g, isAssignTo("d"))

	for _, b := range []*Block{then, els, join, g.Exit} {
		if !g.Dominates(idom, header, b) {
			t.Errorf("header must dominate block %d", b.Index)
		}
	}
	if g.Dominates(idom, then, join) {
		t.Errorf("then branch must not dominate the join (else path bypasses it)")
	}
	if g.Dominates(idom, els, join) {
		t.Errorf("else branch must not dominate the join (then path bypasses it)")
	}
	if g.Dominates(idom, join, header) {
		t.Errorf("join must not dominate the header")
	}
	if !g.Dominates(idom, join, join) {
		t.Errorf("a block dominates itself")
	}
}

func TestDominanceLoop(t *testing.T) {
	body := parseBody(t, `
a := 0
for a < 10 {
	a++
}
z := a
_ = z`)
	g := BuildCFG(body)
	idom := g.Dominators()

	pre := stmtBlock(t, g, isAssignTo("a"))
	loopBody := stmtBlock(t, g, func(s ast.Stmt) bool {
		_, ok := s.(*ast.IncDecStmt)
		return ok
	})
	after := stmtBlock(t, g, isAssignTo("z"))

	if !g.Dominates(idom, pre, loopBody) || !g.Dominates(idom, pre, after) {
		t.Errorf("preheader must dominate loop body and after block")
	}
	if g.Dominates(idom, loopBody, after) {
		t.Errorf("loop body must not dominate the after block (zero-trip path bypasses it)")
	}
	if g.Dominates(idom, after, loopBody) {
		t.Errorf("after block must not dominate the loop body")
	}
}

func TestDominanceUnreachable(t *testing.T) {
	body := parseBody(t, `
return
x := 1
_ = x`)
	g := BuildCFG(body)
	idom := g.Dominators()
	dead := stmtBlock(t, g, isAssignTo("x"))
	if idom[dead.Index] != -1 {
		t.Errorf("dead block should have idom -1, got %d", idom[dead.Index])
	}
	if g.Dominates(idom, g.Entry, dead) {
		t.Errorf("nothing dominates an unreachable block")
	}
}

// FuzzCFGPartition feeds arbitrary Go source through the builder and checks
// the partition contract — every statement in exactly one block, edges
// symmetric — on whatever parses.
func FuzzCFGPartition(f *testing.F) {
	seeds := []string{
		"package p\nfunc f() { x := 1; _ = x }",
		"package p\nfunc f(n int) int {\n\tif n < 0 {\n\t\treturn -n\n\t}\n\treturn n\n}",
		"package p\nfunc f() {\n\tfor i := 0; i < 3; i++ {\n\t\tif i == 1 {\n\t\t\tcontinue\n\t\t}\n\t\tbreak\n\t}\n}",
		"package p\nfunc f(v interface{}) {\n\tswitch x := v.(type) {\n\tcase int:\n\t\t_ = x\n\tdefault:\n\t}\n}",
		"package p\nfunc f(ch chan int) {\n\tselect {\n\tcase v := <-ch:\n\t\t_ = v\n\tdefault:\n\t}\n}",
		"package p\nfunc f() {\nL:\n\tfor {\n\t\tgoto L\n\t}\n}",
		"package p\nfunc f() {\n\tdefer func() { recover() }()\n\tpanic(1)\n}",
		"package p\nfunc f(n int) {\n\tswitch n {\n\tcase 0:\n\t\tfallthrough\n\tcase 1:\n\t\treturn\n\t}\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, 0)
		if err != nil {
			t.Skip()
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := BuildCFG(fd.Body)
			checkPartition(t, g, fd.Body)
			for _, b := range g.Blocks {
				for _, s := range b.Succs {
					if !containsBlock(s.Preds, b) {
						t.Errorf("asymmetric edge %d -> %d", b.Index, s.Index)
					}
				}
				for _, p := range b.Preds {
					if !containsBlock(p.Succs, b) {
						t.Errorf("asymmetric pred edge %d <- %d", b.Index, p.Index)
					}
				}
			}
			g.Dominators() // must not panic on any shape
		}
	})
}
