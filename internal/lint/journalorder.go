package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// journalorder enforces the write-ahead discipline that makes the jobqueue
// crash-recoverable: inside a method of a journaled type (a struct holding
// a *runlog.Writer), every mutation of durable in-memory state must be
// dominated by a journal append in the same function. Mutate-then-append
// is the crash window — if the process dies between the two, memory and
// journal disagree and recovery resurrects or loses a job.
//
// Journal points are AppendSync calls, directly or through a same-package
// helper method whose body appends (q.append). Mutations are assignments,
// IncDec and map deletes rooted at the receiver or at receiver-tainted
// locals (j := q.jobs[id]; j.state = ...). Two escape hatches keep the
// analyzer honest about state that is legitimately not write-ahead:
//
//   - a struct field whose doc or line comment contains "volatile:" is
//     scheduling/notification state, rebuilt on restart, never journaled;
//   - a function whose doc comment contains a //lint:ignore journalorder
//     line is exempt wholesale — recovery replay is the canonical case,
//     since replay folds the journal INTO memory and cannot append first.
//
// The analysis is a must-reach forward dataflow over the method's CFG:
// the fact "a journal append definitely executed" must hold at every
// mutation site on every path.
type journalorder struct {
	scope []string
}

// NewJournalorder returns the journalorder analyzer restricted to packages
// whose import path contains one of the scope segments; an empty scope
// checks every package (fixtures).
func NewJournalorder(scope ...string) Analyzer { return &journalorder{scope: scope} }

func (j *journalorder) Name() string { return "journalorder" }
func (j *journalorder) Doc() string {
	return "in journaled types, AppendSync must dominate every in-memory state mutation"
}

// volatileMarker in a field comment exempts the field from the discipline.
const volatileMarker = "volatile:"

func (j *journalorder) Run(pass *Pass) {
	if len(j.scope) > 0 && !pathHasAny(pass.Pkg.Path, j.scope) {
		return
	}

	// Package-wide survey: journaled type names, volatile field names, and
	// helper methods whose bodies append (depth-1 resolution for q.append).
	journaled := map[string]bool{}   // type name -> has *runlog.Writer field
	writerField := map[string]bool{} // field names holding the writer itself
	volatile := map[string]bool{}    // field names marked "volatile:"
	appender := map[string]bool{}    // method names whose body calls AppendSync
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			switch v := d.(type) {
			case *ast.GenDecl:
				for _, spec := range v.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					surveyStruct(ts.Name.Name, st, journaled, writerField, volatile)
				}
			case *ast.FuncDecl:
				if v.Body != nil && v.Recv != nil && bodyCallsAppendSync(v.Body) {
					appender[v.Name.Name] = true
				}
			}
		}
	}
	if len(journaled) == 0 {
		return
	}

	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			recvName, recvType := recvInfo(fd)
			if recvName == "" || !journaled[recvType] {
				continue
			}
			if docIgnoresJournalorder(fd.Doc) {
				continue
			}
			j.checkMethod(pass, fd, recvName, writerField, volatile, appender)
		}
	}
}

// surveyStruct records whether the struct is journaled and which of its
// fields are the writer or marked volatile. Field names are collected
// package-wide: the job struct has no writer of its own, but its volatile
// fields are still exempt when reached through q.jobs[id].
func surveyStruct(name string, st *ast.StructType, journaled, writerField, volatile map[string]bool) {
	for _, field := range st.Fields.List {
		isWriter := false
		if star, ok := field.Type.(*ast.StarExpr); ok {
			if sel, ok := star.X.(*ast.SelectorExpr); ok {
				if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "runlog" && sel.Sel.Name == "Writer" {
					isWriter = true
					journaled[name] = true
				}
			}
		}
		isVolatile := fieldCommentContains(field, volatileMarker)
		for _, id := range field.Names {
			if isWriter {
				writerField[id.Name] = true
			}
			if isVolatile {
				volatile[id.Name] = true
			}
		}
	}
}

// fieldCommentContains checks the field's doc and trailing line comment.
func fieldCommentContains(field *ast.Field, marker string) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg != nil && strings.Contains(cg.Text(), marker) {
			return true
		}
	}
	return false
}

// bodyCallsAppendSync reports whether the body contains an X.AppendSync(...)
// call outside nested literals.
func bodyCallsAppendSync(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if _, name, _, ok := selCall(n); ok && name == "AppendSync" {
			found = true
		}
		return !found
	})
	return found
}

// recvInfo extracts the receiver name and bare type name of a method.
func recvInfo(fd *ast.FuncDecl) (name, typ string) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return "", ""
	}
	name = fd.Recv.List[0].Names[0].Name
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typ = id.Name
	}
	return name, typ
}

// docIgnoresJournalorder reports whether the function's doc comment carries
// a //lint:ignore journalorder line. Function-level suppression exists
// because the finding positions are scattered mutation sites — recovery
// replay would need a dozen line-level ignores for one design decision.
func docIgnoresJournalorder(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, IgnorePrefix)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) >= 2 && fields[0] == "journalorder" {
			return true
		}
	}
	return false
}

// checkMethod runs the must-reach analysis over one method body.
func (j *journalorder) checkMethod(pass *Pass, fd *ast.FuncDecl, recv string, writerField, volatile, appender map[string]bool) {
	g := BuildCFG(fd.Body)

	// Receiver-tainted locals: j := q.jobs[id] makes j an alias into
	// durable state. Collected in one flow-insensitive pre-pass — lint-level
	// precision, not alias analysis.
	tainted := map[string]bool{recv: true}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE {
				return true
			}
			rootsTainted := false
			for _, rhs := range as.Rhs {
				if key := exprKey(rhs); key != "" && tainted[baseIdent(key)] {
					rootsTainted = true
				}
			}
			if !rootsTainted {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && !tainted[id.Name] {
					tainted[id.Name] = true
					changed = true
				}
			}
			return true
		})
	}

	isJournalPoint := func(s ast.Stmt) bool {
		found := false
		inspectOwned(s, func(n ast.Node) bool {
			recvExpr, name, _, ok := selCall(n)
			if !ok {
				return true
			}
			if name == "AppendSync" {
				found = true
				return false
			}
			// q.append(...): a same-package helper that appends.
			if key := exprKey(recvExpr); key == recv && appender[name] {
				found = true
				return false
			}
			return true
		})
		return found
	}

	// mutationKeys returns the durable-state keys the statement writes.
	mutationKeys := func(s ast.Stmt) []string {
		var keys []string
		// allowBare: a bare-ident target normally means rebinding a local
		// (j = other) or incrementing a value copy — not queue state. A
		// delete() through a map alias is the exception: maps are references,
		// so delete(jobs, id) mutates the shared state the alias points at.
		add := func(e ast.Expr, allowBare bool) {
			if _, bare := e.(*ast.Ident); bare && !allowBare {
				return
			}
			key := exprKey(e)
			if key == "" || !tainted[baseIdent(key)] {
				return
			}
			// Field-level exemptions: the writer itself, volatile fields.
			for _, p := range strings.Split(key, ".")[1:] {
				if writerField[p] || volatile[p] {
					return
				}
			}
			keys = append(keys, key)
		}
		inspectOwned(s, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				if v.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range v.Lhs {
					add(lhs, false)
				}
			case *ast.IncDecStmt:
				add(v.X, false)
			case *ast.CallExpr:
				if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "delete" && len(v.Args) > 0 {
					add(v.Args[0], true)
				}
			}
			return true
		})
		return keys
	}

	// Must analysis: "a journal append definitely executed on every path".
	in := ForwardFlow(g, Flow[bool]{
		Entry: false,
		Top:   true,
		Join:  func(a, b bool) bool { return a && b },
		Equal: func(a, b bool) bool { return a == b },
		Transfer: func(s ast.Stmt, f bool) bool {
			return f || isJournalPoint(s)
		},
	})
	WalkFacts(g, in, func(s ast.Stmt, f bool) bool {
		return f || isJournalPoint(s)
	}, func(s ast.Stmt, f bool) {
		if f || isJournalPoint(s) {
			return
		}
		for _, key := range mutationKeys(s) {
			pass.Report(s, "mutation of %q before journal append: AppendSync must dominate in-memory mutation (crash here loses the update); append first, mark the field volatile, or //lint:ignore journalorder", key)
		}
	})
}
