package lint

import (
	"go/ast"
)

// AtomicWriteScope are the import-path segments of the packages that publish
// benchmark artifacts — exports, metrics, datasets, session files. A crash
// between a plain os.Create and the final write leaves a torn file that the
// resume machinery would then trust; these packages must stage through
// internal/fsatomic instead. The match is by substring, so "cmd/betze"
// covers cmd/betze-bench as well.
var AtomicWriteScope = []string{
	"cmd/betze",
	"internal/harness",
	"internal/datasets",
	"internal/core",
}

// atomicFileFuncs are the os functions that create or replace a file in
// place, visible to readers before the content is complete.
var atomicFileFuncs = map[string]bool{
	"Create":    true,
	"WriteFile": true,
}

// atomicwrite flags direct os.Create / os.WriteFile calls in the
// artifact-publishing packages: output files must go through
// internal/fsatomic (write-temp, fsync, rename) so a crash never publishes
// a torn artifact. Append streams that want partial content after a crash
// (the trace recorders) carry //lint:ignore atomicwrite suppressions.
type atomicwrite struct {
	scope []string
}

// NewAtomicwrite returns the atomicwrite analyzer restricted to packages
// whose import path contains one of the scope segments; an empty scope
// checks every package (used by fixture tests).
func NewAtomicwrite(scope ...string) Analyzer { return &atomicwrite{scope: scope} }

func (a *atomicwrite) Name() string { return "atomicwrite" }
func (a *atomicwrite) Doc() string {
	return "artifact-publishing packages must write files through internal/fsatomic"
}

func (a *atomicwrite) Run(pass *Pass) {
	if len(a.scope) > 0 && !pathHasAny(pass.Pkg.Path, a.scope) {
		return
	}
	for _, f := range pass.Pkg.Files {
		aliases := importAliases(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFuncCall(aliases, call)
			if !ok || path != "os" || !atomicFileFuncs[name] {
				return true
			}
			pass.Report(call, "os.%s publishes a file non-atomically; use internal/fsatomic (or //lint:ignore atomicwrite for append streams)", name)
			return true
		})
	}
}
