package lint

import (
	"go/ast"
	"strings"
)

// metricMethods are the name-resolving methods of the obs metrics API
// (Scope and Registry share them); their first argument is a metric name.
var metricMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Observe":   true,
}

// vocabEventFields are the obs.Event fields whose values join the closed
// trace vocabulary: event types and fault/skip/breaker kinds. Downstream
// consumers join on these strings, so an inline literal is a silent schema
// fork.
var vocabEventFields = map[string]bool{
	"Type": true,
	"Kind": true,
}

// obsvocab keeps the observability vocabulary closed: every metric name
// passed to Counter/Gauge/Histogram/Observe and every Type/Kind of an
// obs.Event composite literal must come from the constants (or name
// helpers) of internal/obs/vocab.go, never from an inline string literal.
// The obs package itself — where the vocabulary lives — is exempt.
//
// Methods are matched by name: the lenient loader cannot always type the
// receiver, and this repository has no unrelated Counter/Gauge/Histogram
// methods taking a name string. A false positive is suppressible with
// //lint:ignore obsvocab <reason>.
type obsvocab struct{}

// NewObsvocab returns the obsvocab analyzer.
func NewObsvocab() Analyzer { return obsvocab{} }

func (obsvocab) Name() string { return "obsvocab" }
func (obsvocab) Doc() string {
	return "metric and trace-event names must come from internal/obs/vocab.go constants"
}

func (obsvocab) Run(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path, "internal/obs") {
		return
	}
	for _, f := range pass.Pkg.Files {
		aliases := importAliases(f)
		obsAlias := ""
		for alias, path := range aliases {
			if strings.HasSuffix(path, "internal/obs") {
				obsAlias = alias
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				sel, ok := v.Fun.(*ast.SelectorExpr)
				if !ok || !metricMethods[sel.Sel.Name] || len(v.Args) == 0 {
					return true
				}
				// Only method calls: a package-level Histogram(...) (e.g.
				// jsonstats constructors) is not the metrics API.
				if id, isIdent := sel.X.(*ast.Ident); isIdent {
					if _, isPkg := aliases[id.Name]; isPkg {
						return true
					}
				}
				if containsStringLit(v.Args[0]) {
					pass.Report(v.Args[0], "inline metric name in %s(); use a constant (or name helper) from internal/obs/vocab.go", sel.Sel.Name)
				}
			case *ast.CompositeLit:
				if obsAlias == "" || !isObsEventType(v.Type, obsAlias) {
					return true
				}
				for _, elt := range v.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !vocabEventFields[key.Name] {
						continue
					}
					if containsStringLit(kv.Value) {
						pass.Report(kv.Value, "inline trace-event %s in obs.Event literal; use an obs.Ev*/obs.Kind* constant", strings.ToLower(key.Name))
					}
				}
			}
			return true
		})
	}
}

// isObsEventType reports whether the composite literal's type is
// <obsAlias>.Event.
func isObsEventType(t ast.Expr, obsAlias string) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Event" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == obsAlias
}
