package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// Relativize rewrites diagnostic file names relative to base, so reports
// (and the golden files of the analyzer tests) are stable regardless of
// where the tree is checked out. File names outside base are left alone.
func Relativize(base string, diags []Diagnostic) {
	for i := range diags {
		if rel, err := filepath.Rel(base, diags[i].File); err == nil && !filepath.IsAbs(rel) {
			diags[i].File = filepath.ToSlash(rel)
			diags[i].Pos.Filename = diags[i].File
		}
	}
}

// WriteText renders diagnostics one per line in file:line:col form,
// followed by a one-line summary. Diagnostics are assumed sorted (Run
// sorts).
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	if len(diags) > 0 {
		if _, err := fmt.Fprintf(w, "%d finding(s)\n", len(diags)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders diagnostics as one sorted JSON array (never null, so a
// clean run is the literal "[]"), suitable for diffing in CI.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
