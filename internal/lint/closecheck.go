package lint

import (
	"go/ast"
	"strings"
)

// osAcquirers are the os functions whose result owns a releasable resource.
var osAcquirers = map[string]string{
	"Open":       "Close",
	"Create":     "Close",
	"OpenFile":   "Close",
	"CreateTemp": "Close",
	"MkdirTemp":  "os.RemoveAll",
}

// releaseMethods are selector names that count as releasing a resource.
var releaseMethods = map[string]bool{
	"Close":   true,
	"Cleanup": true,
	"Stop":    true,
}

// closecheck pairs resource acquisitions with releases: a variable bound to
// an os.Open/Create/CreateTemp/MkdirTemp result or to an engine
// constructor (New* in an internal/engine/... package) must, within the
// same function, either be released (Close/Cleanup/Stop, or os.RemoveAll
// for temp directories) or escape — returned, stored, or handed to another
// function, which transfers ownership. Everything else is a leak: engines
// hold parsed datasets and jq workdirs, so a leaked handle is memory and
// disk that survives the session.
//
// The check is a per-function heuristic, not a path-sensitive escape
// analysis; deliberate leaks (process-lifetime singletons) take a
// //lint:ignore closecheck <reason>.
type closecheck struct{}

// NewClosecheck returns the closecheck analyzer.
func NewClosecheck() Analyzer { return closecheck{} }

func (closecheck) Name() string { return "closecheck" }
func (closecheck) Doc() string {
	return "acquired files, temp dirs and engines must be closed or escape on every path"
}

func (closecheck) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		aliases := importAliases(f)
		inspectFuncs(f, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
			checkBody(pass, aliases, body)
		})
	}
}

// acquisition is one resource-binding assignment inside a function body.
type acquisition struct {
	name string // the bound variable
	id   *ast.Ident
	what string // human label for the report
}

func checkBody(pass *Pass, aliases map[string]string, body *ast.BlockStmt) {
	var acqs []acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		// Nested function literals are checked as their own bodies by
		// inspectFuncs; collecting their acquisitions here would double-report.
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		what, ok := acquirerCall(aliases, call)
		if !ok || len(assign.Lhs) == 0 {
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		acqs = append(acqs, acquisition{name: id.Name, id: id, what: what})
		return true
	})
	for _, acq := range acqs {
		if !releasedOrEscapes(body, acq) {
			pass.Report(acq.id, "%s bound to %q is neither released (Close/Cleanup/RemoveAll) nor escapes this function", acq.what, acq.name)
		}
	}
}

// acquirerCall reports whether the call acquires a releasable resource,
// returning a label for diagnostics.
func acquirerCall(aliases map[string]string, call *ast.CallExpr) (string, bool) {
	path, name, ok := pkgFuncCall(aliases, call)
	if !ok {
		return "", false
	}
	if path == "os" {
		if _, ok := osAcquirers[name]; ok {
			return "os." + name + " result", true
		}
		return "", false
	}
	if strings.Contains(path, "internal/engine/") && strings.HasPrefix(name, "New") {
		return "engine from " + path[strings.LastIndex(path, "/")+1:] + "." + name, true
	}
	return "", false
}

// releasedOrEscapes scans the function body for evidence that the acquired
// variable is released or leaves the function's ownership: a release-method
// selector on it, or any bare (non-selector) use — argument position,
// return statement, composite literal, field assignment — after the
// acquiring identifier.
func releasedOrEscapes(body *ast.BlockStmt, acq acquisition) bool {
	ok := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil || ok {
			return
		}
		if sel, isSel := n.(*ast.SelectorExpr); isSel {
			if id, isID := sel.X.(*ast.Ident); isID && id.Name == acq.name && id != acq.id {
				if releaseMethods[sel.Sel.Name] {
					ok = true
				}
				return // a non-release method use is not evidence
			}
		}
		if id, isID := n.(*ast.Ident); isID {
			if id.Name == acq.name && id != acq.id && id.Pos() > acq.id.Pos() {
				ok = true // bare use: escapes (or os.RemoveAll-style release)
			}
			return
		}
		for _, child := range children(n) {
			walk(child)
		}
	}
	walk(body)
	return ok
}

// children lists the direct AST children of a node.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			out = append(out, m)
		}
		return false
	})
	return out
}
