// Package lint is a small static-analysis framework on the standard
// library's go/ast, go/parser and go/types, purpose-built to machine-check
// the invariants this repository's correctness story rests on: generated
// sessions, fault schedules and traces must be byte-deterministic from a
// seed, sentinel errors must survive wrapping, contexts must be plumbed
// rather than re-rooted, and the observability vocabulary must stay closed.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis at a
// distance — an Analyzer runs over one type-checked package at a time and
// reports position-tagged Diagnostics — but stays stdlib-only, as nothing
// may be installed into the build image. Findings are suppressible in
// source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it; the reason is
// mandatory, so every escape hatch documents itself.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Implementations are stateless; Run is
// called once per loaded package.
type Analyzer interface {
	// Name is the identifier used in reports and //lint:ignore comments.
	Name() string
	// Doc is a one-line description of the guarded invariant.
	Doc() string
	// Run inspects one package and reports findings through pass.Report.
	Run(pass *Pass)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// Pos is the finding's position ("file:line:col" once formatted).
	Pos token.Position `json:"-"`
	// File, Line and Col mirror Pos for the JSON reporter.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message states the violation and the expected idiom.
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass carries one package through one analyzer. Type information is
// best-effort: the loader tolerates unresolved imports (see load.go), so
// analyzers must degrade gracefully when Info has no answer for a node.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// Analyzer is the running analyzer (set by the suite).
	Analyzer Analyzer

	diags *[]Diagnostic
}

// Report records a finding at the node's position.
func (p *Pass) Report(node ast.Node, format string, args ...any) {
	p.ReportPos(node.Pos(), format, args...)
}

// ReportPos records a finding at an explicit position.
func (p *Pass) ReportPos(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name(),
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package, drops findings suppressed by
// //lint:ignore comments, and returns the remainder sorted by position (then
// analyzer, then message) so output is stable across runs — the property the
// JSON reporter needs to be CI-diffable.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, Analyzer: a, diags: &pkgDiags}
			a.Run(pass)
		}
		for _, d := range pkgDiags {
			if sup.suppresses(d) {
				continue
			}
			diags = append(diags, d)
		}
		// Malformed ignore comments are findings themselves: a suppression
		// without a reason (or naming no analyzer) silently rots.
		diags = append(diags, sup.malformed...)
	}
	Sort(diags)
	return diags
}

// Sort orders diagnostics by file, line, column, analyzer, message.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	file     string
	line     int // the comment's own line
	analyzer string
}

type suppressionSet struct {
	entries   []suppression
	malformed []Diagnostic
}

// IgnorePrefix is the suppression comment marker.
const IgnorePrefix = "//lint:ignore"

// collectSuppressions parses every //lint:ignore comment of the package.
// The expected form is "//lint:ignore <analyzer> <reason>"; "all" matches
// every analyzer. A suppression covers findings on its own line and on the
// line immediately below (so it can sit on its own line above a long
// statement, staticcheck-style).
func collectSuppressions(pkg *Package) *suppressionSet {
	set := &suppressionSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, IgnorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					set.malformed = append(set.malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				set.entries = append(set.entries, suppression{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
				})
			}
		}
	}
	return set
}

func (s *suppressionSet) suppresses(d Diagnostic) bool {
	for _, e := range s.entries {
		if e.file != d.File {
			continue
		}
		if e.analyzer != "all" && e.analyzer != d.Analyzer {
			continue
		}
		if d.Line == e.line || d.Line == e.line+1 {
			return true
		}
	}
	return false
}
