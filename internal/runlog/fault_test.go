package runlog

import (
	"bytes"
	"errors"
	"io"
	"os"
	"syscall"
	"testing"

	"github.com/joda-explore/betze/internal/errfs"
)

// Faultable-op layout of a fresh journal: Create issues one syncdir (op 0);
// each AppendSync is then write(header), write(payload), sync — so the
// first AppendSync occupies ops 1-3, the second ops 4-6, and so on.

// TestAppendEnospcRestoresBoundary is the crash-point regression test for
// the partial-append bug: an ENOSPC mid-record used to leave half a record
// in the segment with the file offset advanced, so every LATER acked record
// landed after garbage and recovery truncated at the garbage — losing them.
// Append must restore the boundary so records acked after a transient write
// failure survive.
func TestAppendEnospcRestoresBoundary(t *testing.T) {
	mem := errfs.NewMem()
	// Fault the header write of the second record (op 4, see layout above).
	faulty := errfs.NewFaulty(mem, errfs.Plan{4: errfs.FaultENOSPC})
	w, err := Create("j", Options{FS: faulty})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSync([]byte("first")); err != nil {
		t.Fatal(err)
	}
	err = w.AppendSync([]byte("doomed"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want injected ENOSPC, got %v", err)
	}
	if !errors.Is(err, errfs.ErrInjected) {
		t.Fatalf("injected fault not marked: %v", err)
	}
	// The transient fault is over; the writer must keep working and the
	// record acked now must survive recovery.
	if err := w.AppendSync([]byte("after")); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverFS(mem, "j")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("first"), []byte("after")}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d (truncated=%v reason=%v)",
			len(rec.Records), len(want), rec.Truncated, rec.Reason)
	}
	for i := range want {
		if !bytes.Equal(rec.Records[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, rec.Records[i], want[i])
		}
	}
	if rec.Truncated {
		t.Fatalf("recovery truncated after boundary restore: %v", rec.Reason)
	}
}

// TestSyncFailurePoisonsWriter: a failed fsync must poison the writer — the
// kernel may have dropped the dirty pages, so a retried "success" would ack
// records that never became durable.
func TestSyncFailurePoisonsWriter(t *testing.T) {
	mem := errfs.NewMem()
	// Fault the fsync of the first AppendSync (op 3, see layout above).
	faulty := errfs.NewFaulty(mem, errfs.Plan{3: errfs.FaultSyncFail})
	w, err := Create("j", Options{FS: faulty})
	if err != nil {
		t.Fatal(err)
	}
	err = w.AppendSync([]byte("first"))
	if !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("want ErrWriterFailed from failed fsync, got %v", err)
	}
	if err := w.Append([]byte("more")); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("poisoned writer accepted an append: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("poisoned writer reported a clean sync: %v", err)
	}
}

// TestFollowerReadErrorClassification is the regression test for the EIO
// misclassification bug: a failed ReadAt with partial data used to fall
// through to the record parser, whose verdict on the cut-short buffer was
// the PERMANENT ErrTorn sentinel — on a sealed segment that wedges the
// follower forever over a retryable I/O error. The read failure must
// surface as a plain I/O error and the next Poll must succeed.
func TestFollowerReadErrorClassification(t *testing.T) {
	mem := errfs.NewMem()
	w, err := Create("j", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSync([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSync([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}

	// First read attempt on the sealed segment fails with EIO.
	faulty := errfs.NewFaulty(mem, errfs.Plan{0: errfs.FaultReadErr})
	f := NewFollowerFS(faulty, "j")
	defer f.Close()
	_, err = f.Poll()
	if err == nil {
		t.Fatal("want an I/O error from the faulted read")
	}
	if errors.Is(err, ErrTorn) || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTooLarge) {
		t.Fatalf("retryable I/O error misclassified as permanent corruption: %v", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("injected EIO not preserved: %v", err)
	}
	// The fault was transient: the retry drains the whole journal.
	recs, err := f.Poll()
	if err != nil {
		t.Fatalf("retry after transient EIO failed: %v", err)
	}
	if len(recs) != 2 || !bytes.Equal(recs[0], []byte("one")) || !bytes.Equal(recs[1], []byte("two")) {
		t.Fatalf("retry returned %q", recs)
	}
}

// TestFollowerTornActiveStillWaits: the read-error fix must not change the
// wait classification — a torn tail on the live active segment is an append
// in flight, not an error.
func TestFollowerTornActiveStillWaits(t *testing.T) {
	mem := errfs.NewMem()
	w, err := Create("j", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSync([]byte("whole")); err != nil {
		t.Fatal(err)
	}
	// Simulate an append in flight: write a partial header directly.
	f, err := mem.OpenFile("j/current.wal", os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fl := NewFollowerFS(mem, "j")
	defer fl.Close()
	recs, err := fl.Poll()
	if err != nil {
		t.Fatalf("torn active tail must be a wait, got error %v", err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0], []byte("whole")) {
		t.Fatalf("got %q", recs)
	}
}
