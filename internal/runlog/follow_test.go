package runlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// numbered builds the i-th test payload; sizes vary so records straddle
// segment boundaries at irregular offsets.
func numbered(i int) []byte {
	return []byte(fmt.Sprintf("record-%06d-%s", i, string(make([]byte, i%37))))
}

// TestFollowerConcurrentExactlyOnce is the satellite acceptance test: a
// follower chasing a journal while the writer appends and seals segments
// must deliver every record exactly once, in order, under the race
// detector. Tiny segments force many seal rotations mid-follow.
func TestFollowerConcurrentExactlyOnce(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	const total = 800
	w, err := Create(dir, Options{SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	writeErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := w.Append(numbered(i)); err != nil {
				writeErr <- err
				return
			}
			if i%7 == 0 {
				if err := w.Sync(); err != nil {
					writeErr <- err
					return
				}
			}
		}
		writeErr <- w.Close()
	}()

	f := NewFollower(dir)
	defer f.Close()
	var got [][]byte
	deadline := time.Now().Add(30 * time.Second)
	for len(got) < total {
		if time.Now().After(deadline) {
			t.Fatalf("follower saw %d of %d records before the deadline", len(got), total)
		}
		recs, err := f.Poll()
		if err != nil {
			t.Fatalf("poll after %d records: %v", len(got), err)
		}
		got = append(got, recs...)
		if len(recs) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	if err := <-writeErr; err != nil {
		t.Fatalf("writer: %v", err)
	}

	if len(got) != total {
		t.Fatalf("follower delivered %d records, want exactly %d", len(got), total)
	}
	for i, rec := range got {
		if want := numbered(i); string(rec) != string(want) {
			t.Fatalf("record %d = %q, want %q (duplicate, loss or reorder)", i, rec, want)
		}
	}
	// A final poll after the writer closed must deliver nothing new.
	recs, err := f.Poll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("post-close poll = %d records, %v; want 0, nil", len(recs), err)
	}
}

// TestFollowerStartsOnExistingJournal covers the replay-then-follow path:
// records written (and segments sealed) before the follower exists are
// delivered first, then live appends continue the same sequence.
func TestFollowerStartsOnExistingJournal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	w, err := Create(dir, Options{SegmentBytes: 128, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Append(numbered(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	f := NewFollower(dir)
	defer f.Close()
	recs, err := f.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("replay delivered %d records, want 20", len(recs))
	}
	for i := 20; i < 40; i++ {
		if err := w.Append(numbered(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	live, err := f.Poll()
	if err != nil {
		t.Fatal(err)
	}
	recs = append(recs, live...)
	if len(recs) != 40 {
		t.Fatalf("follow delivered %d records, want 40", len(recs))
	}
	for i, rec := range recs {
		if string(rec) != string(numbered(i)) {
			t.Fatalf("record %d out of sequence", i)
		}
	}
}

// TestFollowerEmptyDir: polling a journal that does not exist yet is not an
// error — the follower waits for it to appear.
func TestFollowerEmptyDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	f := NewFollower(dir)
	defer f.Close()
	recs, err := f.Poll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("poll on missing journal = %d records, %v", len(recs), err)
	}
	w, err := Create(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	recs, err = f.Poll()
	if err != nil || len(recs) != 1 || string(recs[0]) != "first" {
		t.Fatalf("poll after create = %q, %v", recs, err)
	}
}

// TestFollowerTornTailWaits: a partial record at the end of the active
// segment is an append in flight, not an error; the follower holds position
// and delivers the record once it completes.
func TestFollowerTornTailWaits(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	w, err := Create(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([]byte("complete")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append by writing a bare partial header directly.
	path := filepath.Join(dir, "current.wal")
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write([]byte{0x05, 0x00}); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	f := NewFollower(dir)
	defer f.Close()
	recs, err := f.Poll()
	if err != nil {
		t.Fatalf("torn active tail reported as error: %v", err)
	}
	if len(recs) != 1 || string(recs[0]) != "complete" {
		t.Fatalf("poll = %q, want the one complete record", recs)
	}
	if recs, err = f.Poll(); err != nil || len(recs) != 0 {
		t.Fatalf("re-poll over torn tail = %d records, %v", len(recs), err)
	}
}

// TestFollowerCorruptRecord: a checksum-corrupt record stops the follower
// with the ErrCorrupt sentinel — nothing after the first bad record is
// trustworthy, exactly the Recover contract.
func TestFollowerCorruptRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	w, err := Create(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("to-be-corrupted")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "current.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	f := NewFollower(dir)
	defer f.Close()
	recs, err := f.Poll()
	if len(recs) != 1 || string(recs[0]) != "good" {
		t.Fatalf("poll = %q, want the one intact record", recs)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt record error = %v, want ErrCorrupt", err)
	}
}
