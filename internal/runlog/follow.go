package runlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/joda-explore/betze/internal/errfs"
)

// Follower tails a journal directory live: Poll returns every record
// appended since the previous call, in append order, exactly once — across
// segment seals and writer fsync boundaries. A Follower never blocks the
// writer; it reads sealed segments to completion and then chases the active
// segment by offset, deciding "this file was sealed underneath me" with an
// inode comparison against the path it opened. It is the streaming
// counterpart of Recover: where Recover replays a journal after the writer
// died, Follow replays and then keeps following one that is still being
// written (the betze-web SSE endpoints are Followers over the job-queue
// journal).
//
// A Follower is not safe for concurrent use; give each consumer its own.
type Follower struct {
	fsys errfs.FS
	dir  string
	// nextSealed is the index the next sealed segment is expected under;
	// seals are strictly sequential, so the active segment — once renamed —
	// always becomes segment nextSealed.
	nextSealed int
	cur        errfs.File
	// curSealed records whether cur was opened under a sealed name (and is
	// therefore complete) or is the active segment (and may still grow).
	curSealed bool
	off       int64
}

// NewFollower starts following the journal in dir from its first record.
// The directory (or the journal inside it) may not exist yet; Poll simply
// returns nothing until it does.
func NewFollower(dir string) *Follower {
	return NewFollowerFS(errfs.OS(), dir)
}

// NewFollowerFS is NewFollower over an explicit filesystem.
func NewFollowerFS(fsys errfs.FS, dir string) *Follower {
	return &Follower{fsys: fsys, dir: dir, nextSealed: 1}
}

// Poll returns the records appended since the last call, in order. An empty
// batch means the follower is caught up with the journal's durable tail. A
// torn record at the end of the active segment is not an error — it is an
// append in flight, and the next Poll retries from the same boundary; a torn
// or checksum-corrupt record anywhere else is reported as the wrapped
// ErrTorn/ErrCorrupt/ErrTooLarge sentinel, after which the follower is
// stuck at that boundary by design (the write-ahead-log truncation rule:
// nothing after the first bad record is trustworthy). A failed read (for
// example EIO) is NOT one of those sentinels: it is returned as a plain
// wrapped I/O error and the next Poll retries from the same boundary.
func (f *Follower) Poll() ([][]byte, error) {
	var out [][]byte
	for {
		if f.cur == nil {
			if ok, err := f.open(); err != nil || !ok {
				return out, err
			}
		}
		recs, sealedUnderUs, err := f.drain()
		out = append(out, recs...)
		if err != nil {
			return out, err
		}
		if !f.curSealed && !sealedUnderUs {
			// Caught up with the active segment; more may arrive later.
			return out, nil
		}
		// Either cur was opened under a sealed name, or it was the active
		// segment and the writer sealed it mid-read: in both cases its
		// content is final and fully consumed, so move past it.
		if err := f.cur.Close(); err != nil {
			return out, fmt.Errorf("runlog: closing followed segment: %w", err)
		}
		f.cur = nil
		f.nextSealed++
		f.off = 0
	}
}

// open positions the follower on the next unread segment: the sealed
// segment with index nextSealed if it exists, the active segment otherwise.
// It returns false when there is nothing to open yet.
func (f *Follower) open() (bool, error) {
	sealed := filepath.Join(f.dir, fmt.Sprintf("%06d%s", f.nextSealed, sealedSuffix))
	for {
		if file, err := f.fsys.Open(sealed); err == nil {
			f.cur, f.curSealed, f.off = file, true, 0
			return true, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return false, fmt.Errorf("runlog: following %s: %w", sealed, err)
		}
		active := filepath.Join(f.dir, activeSegment)
		file, err := f.fsys.Open(active)
		if errors.Is(err, os.ErrNotExist) {
			return false, nil // journal (or its next segment) not created yet
		}
		if err != nil {
			return false, fmt.Errorf("runlog: following %s: %w", active, err)
		}
		// A rotation between the two opens above would have handed us the
		// NEXT active while segment nextSealed sits unread. The writer seals
		// strictly before creating the new active, so re-checking the sealed
		// path now proves which case we are in: absent means this handle
		// predates any rotation and is exactly the segment that will seal as
		// nextSealed (a rename after this point is what drain detects).
		if _, err := f.fsys.Stat(sealed); errors.Is(err, os.ErrNotExist) {
			f.cur, f.curSealed, f.off = file, false, 0
			return true, nil
		} else if err != nil {
			file.Close()
			return false, fmt.Errorf("runlog: following %s: %w", sealed, err)
		}
		file.Close() // lost the race; start over with the sealed segment
	}
}

// drain reads every complete record from f.off to the end of cur. For the
// active segment it additionally reports whether the file was sealed
// underneath the handle (renamed away), which proves its content final.
// The seal check is taken BEFORE reading: if the file was already renamed
// then, everything the writer will ever put in it is visible to the read
// that follows; if it is renamed after, the next Poll observes it.
func (f *Follower) drain() (recs [][]byte, sealedUnderUs bool, err error) {
	if !f.curSealed {
		cur, err := f.cur.Stat()
		if err != nil {
			return nil, false, fmt.Errorf("runlog: %w", err)
		}
		at, err := f.fsys.Stat(filepath.Join(f.dir, activeSegment))
		if errors.Is(err, os.ErrNotExist) {
			sealedUnderUs = true // mid-rotation: rename done, new active pending
		} else if err != nil {
			return nil, false, fmt.Errorf("runlog: %w", err)
		} else {
			sealedUnderUs = !f.fsys.SameFile(cur, at)
		}
	}
	st, err := f.cur.Stat()
	if err != nil {
		return nil, sealedUnderUs, fmt.Errorf("runlog: %w", err)
	}
	if st.Size() <= f.off {
		return nil, sealedUnderUs, nil
	}
	buf := make([]byte, st.Size()-f.off)
	n, rerr := f.cur.ReadAt(buf, f.off)
	if errors.Is(rerr, io.EOF) {
		// The file shrank between Stat and read (the writer truncating a
		// partial append away); parse whatever did arrive.
		rerr = nil
	}
	recs, consumed, perr := parseAvailable(buf[:n])
	f.off += consumed
	if rerr != nil {
		// The read itself failed (e.g. EIO). The complete records that did
		// arrive are consumed, but the failure must surface as a retryable
		// I/O error — NOT fall through to the parser, whose verdict on a
		// cut-short buffer would be the permanent ErrTorn/ErrCorrupt
		// sentinel. The next Poll retries from the same boundary.
		return recs, sealedUnderUs, fmt.Errorf("runlog: reading followed segment: %w", rerr)
	}
	if perr != nil {
		tornActive := !f.curSealed && !sealedUnderUs && errors.Is(perr, ErrTorn)
		if !tornActive {
			return recs, sealedUnderUs, fmt.Errorf("%w at %s:%d", perr, st.Name(), f.off)
		}
		// A torn tail on the live active segment is an append in flight;
		// wait for the writer to finish it.
		sealedUnderUs = false
	}
	return recs, sealedUnderUs, nil
}

// parseAvailable splits a byte window into complete records, returning how
// many bytes of complete records were consumed. A trailing partial record
// is reported as ErrTorn with consumed pointing at its start; corruption
// inside the window is ErrCorrupt/ErrTooLarge at the same boundary.
func parseAvailable(data []byte) (recs [][]byte, consumed int64, err error) {
	off := int64(0)
	for int64(len(data)) > off {
		rest := data[off:]
		if len(rest) < headerSize {
			return recs, off, ErrTorn
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > MaxRecord {
			return recs, off, ErrTooLarge
		}
		if int64(len(rest)) < headerSize+int64(n) {
			return recs, off, ErrTorn
		}
		payload := rest[headerSize : headerSize+int64(n)]
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, off, ErrCorrupt
		}
		rec := make([]byte, n)
		copy(rec, payload)
		recs = append(recs, rec)
		off += headerSize + int64(n)
	}
	return recs, off, nil
}

// Close releases the follower's open segment handle, if any.
func (f *Follower) Close() error {
	if f.cur == nil {
		return nil
	}
	err := f.cur.Close()
	f.cur = nil
	if err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	return nil
}
