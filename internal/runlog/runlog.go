// Package runlog is an append-only, crash-safe write-ahead run journal.
// A journal is a directory of segments; each segment is a sequence of
// length-prefixed, checksummed records:
//
//	u32le payload length | u32le CRC-32C of payload | payload bytes
//
// The writer appends to the active segment ("current.wal") and fsyncs on
// Sync (the harness syncs after every work-unit record, so a completed
// session is durable before the next one starts). When the active segment
// outgrows Options.SegmentBytes it is sealed by an atomic rename to
// "NNNNNN.wal" — readers never observe a half-sealed segment.
//
// Recovery reads sealed segments in order, then the active one, and
// truncates at the first torn or checksum-corrupt record instead of
// failing: a crash mid-append loses at most the record being written,
// exactly the write-ahead-log contract storage engines provide. Re-opening
// a recovered journal for append physically truncates the torn tail first,
// so the next record lands on a clean boundary.
//
// All I/O goes through an errfs.FS (Options.FS, defaulting to the
// passthrough errfs.OS()), so storage faults can be injected and crash
// states enumerated; see internal/errfs and internal/errfs/crashpoint.
package runlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/joda-explore/betze/internal/errfs"
)

// Sentinel errors of the journal format. Readers wrap them with positional
// context; callers branch with errors.Is.
var (
	// ErrCorrupt marks a record whose payload fails its checksum.
	ErrCorrupt = errors.New("runlog: corrupt record")
	// ErrTorn marks a record cut short by a crash: a partial header or a
	// payload shorter than its length prefix.
	ErrTorn = errors.New("runlog: torn record")
	// ErrTooLarge marks a length prefix beyond MaxRecord — indistinguishable
	// from garbage, so recovery treats it as corruption.
	ErrTooLarge = errors.New("runlog: record length exceeds bound")
	// ErrExists is returned by Create when the directory already holds a
	// journal (resume it instead of silently overwriting).
	ErrExists = errors.New("runlog: journal already exists")
	// ErrNoJournal is returned by Open/Recover when the directory holds no
	// journal segments.
	ErrNoJournal = errors.New("runlog: no journal")
	// ErrWriterFailed marks a writer poisoned by an unrecoverable storage
	// fault: a failed fsync (the kernel may have dropped dirty pages, so a
	// later "success" would ack records that are not durable) or a partial
	// append whose boundary could not be restored. Every subsequent
	// Append/Sync fails with it; the journal directory itself is still
	// recoverable up to the last good boundary.
	ErrWriterFailed = errors.New("runlog: writer failed")
)

// MaxRecord bounds one record's payload; larger length prefixes are read as
// corruption, which keeps a flipped length byte from swallowing the rest of
// the segment as one giant bogus record.
const MaxRecord = 16 << 20

const (
	headerSize    = 8 // u32 length + u32 crc
	activeSegment = "current.wal"
	sealedSuffix  = ".wal"
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on amd64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes the writer.
type Options struct {
	// SegmentBytes seals the active segment once it grows past this size
	// (default 8 MiB). Sealing is an atomic rename.
	SegmentBytes int64
	// NoSync skips fsync (tests only; production callers want the
	// durability they came for).
	NoSync bool
	// FS is the filesystem all journal I/O goes through. Defaults to the
	// passthrough errfs.OS(); tests and the crashfuzz harness substitute
	// an in-memory or fault-injecting filesystem.
	FS errfs.FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.FS == nil {
		o.FS = errfs.OS()
	}
	return o
}

// Writer appends records to a journal directory.
type Writer struct {
	dir       string
	opts      Options
	f         errfs.File
	size      int64
	nextSeal  int
	appends   int64
	rotations int64
	// failed poisons the writer after an unrecoverable fault; see
	// ErrWriterFailed.
	failed error
}

// Create initialises a fresh journal in dir (created if missing). It
// refuses a directory that already holds journal segments: resuming and
// starting over are different intents, and overwriting a journal silently
// would destroy the recovery data it exists to provide.
func Create(dir string, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	segs, active, err := listSegments(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 || active {
		return nil, fmt.Errorf("%w in %s", ErrExists, dir)
	}
	return newWriter(dir, opts, 1)
}

// Open re-opens an existing journal for append. The active segment's torn
// tail (if any) is physically truncated to the last complete record, so
// appended records always start on a clean boundary. Callers wanting the
// surviving records run Recover first.
func Open(dir string, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	segs, active, err := listSegments(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 && !active {
		return nil, fmt.Errorf("%w in %s", ErrNoJournal, dir)
	}
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1].index + 1
	}
	if !active {
		return newWriter(dir, opts, next)
	}
	w := &Writer{dir: dir, opts: opts, nextSeal: next}
	path := filepath.Join(dir, activeSegment)
	// Scan the active segment for its last clean boundary and cut the tail.
	good, _, _, err := scanSegment(opts.FS, path)
	if err != nil {
		return nil, err
	}
	f, err := opts.FS.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("runlog: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("runlog: %w", err)
	}
	w.f = f
	w.size = good
	return w, nil
}

func newWriter(dir string, opts Options, nextSeal int) (*Writer, error) {
	f, err := opts.FS.OpenFile(filepath.Join(dir, activeSegment), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	if err := syncDir(opts.FS, dir, opts); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{dir: dir, opts: opts, f: f, nextSeal: nextSeal}, nil
}

// Append writes one record to the active segment (buffered by the OS until
// Sync). Rotation happens before the write, so a record is never split
// across segments. A failed write restores the last clean record boundary
// (truncating any partial bytes) so a later append never lands after
// garbage; if the boundary cannot be restored the writer is poisoned.
func (w *Writer) Append(payload []byte) error {
	if w.failed != nil {
		return w.failed
	}
	if len(payload) > MaxRecord {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	if w.size > 0 && w.size+int64(headerSize+len(payload)) > w.opts.SegmentBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return w.abortAppend(err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return w.abortAppend(err)
	}
	w.size += int64(headerSize + len(payload))
	w.appends++
	return nil
}

// abortAppend recovers from a failed record write. Partial bytes may have
// landed and the file offset may have advanced, so the segment is truncated
// back to the last clean boundary and the offset restored; without this, a
// later successful AppendSync would land after garbage and recovery would
// truncate AT the garbage — losing records that were acked AFTER the
// transient failure. If the restore itself fails, the writer is poisoned:
// acking anything appended over unknown partial bytes would break the
// recovery prefix contract.
func (w *Writer) abortAppend(werr error) error {
	if terr := w.f.Truncate(w.size); terr != nil {
		w.failed = fmt.Errorf("%w: append: %v; boundary restore: %v", ErrWriterFailed, werr, terr)
		return w.failed
	}
	if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
		w.failed = fmt.Errorf("%w: append: %v; offset restore: %v", ErrWriterFailed, werr, serr)
		return w.failed
	}
	return fmt.Errorf("runlog: %w", werr)
}

// Sync makes every appended record durable. A failed fsync poisons the
// writer: the kernel may have dropped the dirty pages, so retrying and
// reporting success would ack records that never reached the disk.
func (w *Writer) Sync() error {
	if w.failed != nil {
		return w.failed
	}
	if w.opts.NoSync {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.failed = fmt.Errorf("%w: fsync: %v", ErrWriterFailed, err)
		return w.failed
	}
	return nil
}

// AppendSync appends one record and fsyncs — the per-work-unit durability
// point of the harness.
func (w *Writer) AppendSync(payload []byte) error {
	if err := w.Append(payload); err != nil {
		return err
	}
	return w.Sync()
}

// rotate seals the active segment under the next index via atomic rename
// and starts a fresh one.
func (w *Writer) rotate() error {
	if err := w.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	sealed := filepath.Join(w.dir, fmt.Sprintf("%06d%s", w.nextSeal, sealedSuffix))
	if err := w.opts.FS.Rename(filepath.Join(w.dir, activeSegment), sealed); err != nil {
		return fmt.Errorf("runlog: sealing segment: %w", err)
	}
	if err := syncDir(w.opts.FS, w.dir, w.opts); err != nil {
		return err
	}
	w.nextSeal++
	w.rotations++
	f, err := w.opts.FS.OpenFile(filepath.Join(w.dir, activeSegment), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	w.f = f
	w.size = 0
	return syncDir(w.opts.FS, w.dir, w.opts)
}

// Stats reports writer-side accounting.
func (w *Writer) Stats() (appends, rotations int64) { return w.appends, w.rotations }

// Seal closes the journal for good: the active segment is synced, closed
// and sealed under the next index (an empty active segment is simply
// removed). A journal sealed by a graceful shutdown leaves no current.wal
// behind, so the next Recover replays only clean segment boundaries and a
// Follower sees the stream end exactly where the writer stopped. The
// Writer is unusable afterwards.
func (w *Writer) Seal() error {
	if w.f == nil {
		return nil
	}
	if err := w.Sync(); err != nil {
		return err
	}
	err := w.f.Close()
	w.f = nil
	if err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	active := filepath.Join(w.dir, activeSegment)
	if w.size == 0 {
		if err := w.opts.FS.Remove(active); err != nil {
			return fmt.Errorf("runlog: removing empty active segment: %w", err)
		}
		return syncDir(w.opts.FS, w.dir, w.opts)
	}
	sealed := filepath.Join(w.dir, fmt.Sprintf("%06d%s", w.nextSeal, sealedSuffix))
	if err := w.opts.FS.Rename(active, sealed); err != nil {
		return fmt.Errorf("runlog: sealing segment: %w", err)
	}
	w.nextSeal++
	return syncDir(w.opts.FS, w.dir, w.opts)
}

// Close syncs and closes the active segment. A poisoned writer closes its
// handle but still reports the poisoning fault.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.Sync()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("runlog: %w", cerr)
	}
	w.f = nil
	return err
}

// Recovery is the result of replaying a journal directory.
type Recovery struct {
	// Records are the intact payloads, in append order.
	Records [][]byte
	// Truncated reports that a torn or corrupt record cut the replay short;
	// Records holds everything before it.
	Truncated bool
	// Reason wraps ErrTorn/ErrCorrupt/ErrTooLarge with position context when
	// Truncated is set.
	Reason error
	// Segment and Offset locate the first bad record when Truncated.
	Segment string
	Offset  int64
}

// Recover replays every intact record of the journal in dir. Torn and
// corrupt records do not fail the recovery — replay stops at the first one
// (dropping it and everything after, the write-ahead-log truncation rule)
// and the Recovery reports where and why. Only I/O errors and a missing
// journal are returned as errors.
func Recover(dir string) (*Recovery, error) {
	return RecoverFS(errfs.OS(), dir)
}

// RecoverFS is Recover over an explicit filesystem.
func RecoverFS(fsys errfs.FS, dir string) (*Recovery, error) {
	segs, active, err := listSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 && !active {
		return nil, fmt.Errorf("%w in %s", ErrNoJournal, dir)
	}
	rec := &Recovery{}
	paths := make([]string, 0, len(segs)+1)
	for _, s := range segs {
		paths = append(paths, filepath.Join(dir, s.name))
	}
	if active {
		paths = append(paths, filepath.Join(dir, activeSegment))
	}
	for _, path := range paths {
		_, records, reason, err := scanSegment(fsys, path)
		if err != nil {
			return nil, err
		}
		rec.Records = append(rec.Records, records...)
		if reason != nil {
			rec.Truncated = true
			rec.Reason = reason
			rec.Segment = path
			var off int64
			for _, r := range records {
				off += int64(headerSize + len(r))
			}
			rec.Offset = off
			break // everything after the first bad record is unreachable
		}
	}
	return rec, nil
}

// scanSegment reads one segment file, returning the byte offset of the last
// clean record boundary, the intact payloads, and the wrapped sentinel that
// stopped the scan (nil when the segment ends exactly on a boundary). I/O
// failures are reported separately — they mean the journal is unreadable,
// not merely torn.
func scanSegment(fsys errfs.FS, path string) (good int64, records [][]byte, reason, ioErr error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("runlog: reading %s: %w", path, err)
	}
	off := int64(0)
	for int64(len(data))-off > 0 {
		rest := data[off:]
		if len(rest) < headerSize {
			return off, records, fmt.Errorf("%w: %d trailing header byte(s) at %s:%d", ErrTorn, len(rest), filepath.Base(path), off), nil
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > MaxRecord {
			return off, records, fmt.Errorf("%w: length %d at %s:%d", ErrTooLarge, n, filepath.Base(path), off), nil
		}
		if int64(len(rest)) < headerSize+int64(n) {
			return off, records, fmt.Errorf("%w: payload cut at %d of %d bytes at %s:%d", ErrTorn, len(rest)-headerSize, n, filepath.Base(path), off), nil
		}
		payload := rest[headerSize : headerSize+int64(n)]
		if crc32.Checksum(payload, crcTable) != sum {
			return off, records, fmt.Errorf("%w: checksum mismatch at %s:%d", ErrCorrupt, filepath.Base(path), off), nil
		}
		// Copy: data is one big read buffer; callers keep payloads around.
		rec := make([]byte, n)
		copy(rec, payload)
		records = append(records, rec)
		off += headerSize + int64(n)
	}
	return off, records, nil, nil
}

// segment is one sealed segment file.
type segment struct {
	name  string
	index int
}

// listSegments enumerates sealed segments (sorted by index) and whether an
// active segment exists. A missing directory is reported as no journal.
func listSegments(fsys errfs.FS, dir string) ([]segment, bool, error) {
	entries, err := fsys.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("runlog: %w", err)
	}
	var segs []segment
	active := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if name == activeSegment {
			active = true
			continue
		}
		idx, ok := strings.CutSuffix(name, sealedSuffix)
		if !ok {
			continue
		}
		n, err := strconv.Atoi(idx)
		if err != nil || n <= 0 {
			continue
		}
		segs = append(segs, segment{name: name, index: n})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, active, nil
}

// syncDir makes directory-level changes (segment create, seal rename)
// durable; best-effort on filesystems refusing directory fsync.
func syncDir(fsys errfs.FS, dir string, opts Options) error {
	if opts.NoSync {
		return nil
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	return nil
}
