package runlog

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/joda-explore/betze/internal/errfs"
)

func mustCreate(t *testing.T, dir string, opts Options) *Writer {
	t.Helper()
	w, err := Create(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func appendAll(t *testing.T, w *Writer, payloads ...[]byte) {
	t.Helper()
	for _, p := range payloads {
		if err := w.AppendSync(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := mustCreate(t, dir, Options{NoSync: true})
	want := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four-longer-payload")}
	appendAll(t, w, want...)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Truncated {
		t.Fatalf("clean journal reported truncated: %v", rec.Reason)
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i := range want {
		if !bytes.Equal(rec.Records[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, rec.Records[i], want[i])
		}
	}
}

func TestSegmentRotationAndOrder(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation every couple of records.
	w := mustCreate(t, dir, Options{SegmentBytes: 64, NoSync: true})
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("record-%02d-%s", i, "xxxxxxxxxxxx"))
		want = append(want, p)
	}
	appendAll(t, w, want...)
	if _, rotations := w.Stats(); rotations == 0 {
		t.Fatal("no rotation happened; SegmentBytes ignored?")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sealed := 0
	for _, e := range entries {
		if e.Name() != activeSegment {
			sealed++
		}
	}
	if sealed == 0 {
		t.Fatal("no sealed segments on disk")
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Truncated || len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records (truncated=%v), want %d", len(rec.Records), rec.Truncated, len(want))
	}
	for i := range want {
		if !bytes.Equal(rec.Records[i], want[i]) {
			t.Fatalf("record %d out of order: %q != %q", i, rec.Records[i], want[i])
		}
	}
}

func TestCreateRefusesExistingJournal(t *testing.T) {
	dir := t.TempDir()
	w := mustCreate(t, dir, Options{NoSync: true})
	appendAll(t, w, []byte("x"))
	w.Close()
	if _, err := Create(dir, Options{}); !errors.Is(err, ErrExists) {
		t.Errorf("Create over existing journal: %v, want ErrExists", err)
	}
}

func TestRecoverMissingJournal(t *testing.T) {
	if _, err := Recover(t.TempDir()); !errors.Is(err, ErrNoJournal) {
		t.Errorf("Recover of empty dir: %v, want ErrNoJournal", err)
	}
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), Options{}); !errors.Is(err, ErrNoJournal) {
		t.Errorf("Open of missing dir: %v, want ErrNoJournal", err)
	}
}

// writeJournal builds a small single-segment journal and returns its active
// segment path and full payload list.
func writeJournal(t *testing.T, dir string) (string, [][]byte) {
	t.Helper()
	w := mustCreate(t, dir, Options{NoSync: true})
	payloads := [][]byte{
		[]byte(`{"type":"run_start"}`),
		[]byte(`{"type":"session","seed":1}`),
		[]byte(`{"type":"session","seed":2}`),
		[]byte(`{"type":"run_end"}`),
	}
	appendAll(t, w, payloads...)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, activeSegment), payloads
}

// TestTruncationAtEveryOffset cuts the journal at every possible byte length
// and asserts recovery never fails, never panics, and returns exactly the
// records whose bytes fully survived.
func TestTruncationAtEveryOffset(t *testing.T) {
	src := t.TempDir()
	seg, payloads := writeJournal(t, src)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries: offsets where a prefix ends exactly on a record.
	boundaries := map[int64]int{}
	off, n := int64(0), 0
	boundaries[0] = 0
	for _, p := range payloads {
		off += headerSize + int64(len(p))
		n++
		boundaries[off] = n
	}
	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, activeSegment), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir)
		if err != nil {
			t.Fatalf("cut=%d: Recover failed: %v", cut, err)
		}
		wantRecords := 0
		for b, count := range boundaries {
			if b <= int64(cut) && count > wantRecords {
				wantRecords = count
			}
		}
		if len(rec.Records) != wantRecords {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(rec.Records), wantRecords)
		}
		_, onBoundary := boundaries[int64(cut)]
		if rec.Truncated == onBoundary {
			t.Fatalf("cut=%d: Truncated=%v, boundary=%v", cut, rec.Truncated, onBoundary)
		}
		if rec.Truncated && !errors.Is(rec.Reason, ErrTorn) {
			t.Fatalf("cut=%d: reason = %v, want ErrTorn", cut, rec.Reason)
		}
		// A torn journal must re-open cleanly for append and end up whole.
		w, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut=%d: Open after truncation: %v", cut, err)
		}
		if err := w.AppendSync([]byte("tail")); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		w.Close()
		rec2, err := Recover(dir)
		if err != nil || rec2.Truncated {
			t.Fatalf("cut=%d: post-repair recovery: %+v, %v", cut, rec2, err)
		}
		if len(rec2.Records) != wantRecords+1 {
			t.Fatalf("cut=%d: post-repair records = %d, want %d", cut, len(rec2.Records), wantRecords+1)
		}
		if !bytes.Equal(rec2.Records[wantRecords], []byte("tail")) {
			t.Fatalf("cut=%d: appended record corrupted: %q", cut, rec2.Records[wantRecords])
		}
	}
}

// TestBitFlips flips every byte of the journal (one at a time) and asserts
// recovery never panics, never errors, and never returns a record that
// differs from what was written — corruption only ever truncates.
func TestBitFlips(t *testing.T) {
	src := t.TempDir()
	seg, payloads := writeJournal(t, src)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	target := filepath.Join(dir, activeSegment)
	for i := 0; i < len(full); i++ {
		mutated := append([]byte(nil), full...)
		mutated[i] ^= 0x40
		if err := os.WriteFile(target, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir)
		if err != nil {
			t.Fatalf("flip@%d: Recover failed: %v", i, err)
		}
		for j, r := range rec.Records {
			if j < len(payloads) && !bytes.Equal(r, payloads[j]) {
				t.Fatalf("flip@%d: record %d silently corrupted: %q", i, j, r)
			}
		}
		if !rec.Truncated {
			t.Fatalf("flip@%d: corruption not detected", i)
		}
		if !errors.Is(rec.Reason, ErrCorrupt) && !errors.Is(rec.Reason, ErrTorn) && !errors.Is(rec.Reason, ErrTooLarge) {
			t.Fatalf("flip@%d: reason %v lacks a sentinel", i, rec.Reason)
		}
	}
}

// TestCorruptSealedSegmentStopsReplay puts garbage mid-journal in a sealed
// segment: recovery must stop there and ignore later segments.
func TestCorruptSealedSegmentStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w := mustCreate(t, dir, Options{SegmentBytes: 40, NoSync: true})
	for i := 0; i < 10; i++ {
		appendAll(t, w, []byte(fmt.Sprintf("record-%d-padpadpadpad", i)))
	}
	w.Close()
	segs, _, err := listSegments(errfs.OS(), dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >=2 sealed segments, got %d (%v)", len(segs), err)
	}
	victim := filepath.Join(dir, segs[1].name)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize] ^= 0xff // corrupt first payload byte of the segment
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated || !errors.Is(rec.Reason, ErrCorrupt) {
		t.Fatalf("truncated=%v reason=%v, want corrupt truncation", rec.Truncated, rec.Reason)
	}
	if rec.Segment != victim {
		t.Errorf("bad segment reported: %s, want %s", rec.Segment, victim)
	}
	// Only records from segments before the corruption survive.
	for _, r := range rec.Records {
		if !bytes.HasPrefix(r, []byte("record-")) {
			t.Errorf("garbage record recovered: %q", r)
		}
	}
}

func TestOversizedAppendRejected(t *testing.T) {
	w := mustCreate(t, t.TempDir(), Options{NoSync: true})
	defer w.Close()
	if err := w.Append(make([]byte, MaxRecord+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized append: %v, want ErrTooLarge", err)
	}
}

// TestSealLeavesNoActiveSegment pins the graceful-shutdown contract: Seal
// renames the active segment under the next sealed index (or removes it
// when empty), every record survives a subsequent Recover, and a journal
// reopened for append starts a fresh active segment after the seal point.
func TestSealLeavesNoActiveSegment(t *testing.T) {
	dir := t.TempDir()
	w := mustCreate(t, dir, Options{SegmentBytes: 64, NoSync: true})
	const n = 20
	for i := 0; i < n; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, activeSegment)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("active segment survived Seal: %v", err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Truncated || len(rec.Records) != n {
		t.Fatalf("recovered %d records (truncated=%v), want %d clean", len(rec.Records), rec.Truncated, n)
	}
	// Sealing twice is a no-op, not an error.
	if err := w.Seal(); err != nil {
		t.Fatalf("second Seal: %v", err)
	}

	// Reopen-append-seal continues the sealed numbering without clashes.
	w2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("record-after-reopen")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Seal(); err != nil {
		t.Fatal(err)
	}
	rec, err = Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != n+1 || string(rec.Records[n]) != "record-after-reopen" {
		t.Fatalf("after reopen+seal: %d records, want %d", len(rec.Records), n+1)
	}
}

// TestSealEmptyActiveRemoved: an active segment that never saw a record is
// deleted rather than sealed as a zero-byte segment.
func TestSealEmptyActiveRemoved(t *testing.T) {
	dir := t.TempDir()
	w := mustCreate(t, dir, Options{NoSync: true})
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("empty journal left %d files behind after Seal", len(entries))
	}
}
