package jsonstats

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/joda-explore/betze/internal/jsonval"
)

func doc(t *testing.T, s string) jsonval.Value {
	t.Helper()
	v, err := jsonval.Parse([]byte(s))
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return v
}

func buildDataset(t *testing.T, docs ...string) *Dataset {
	t.Helper()
	d := NewDataset("test", DefaultConfig())
	for _, s := range docs {
		d.AddDocument(doc(t, s))
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d
}

func TestAddDocumentCountsPaths(t *testing.T) {
	d := buildDataset(t,
		`{"user":{"name":"alice","age":30},"ok":true}`,
		`{"user":{"name":"bob"},"ok":false}`,
		`{"other":1}`,
	)
	if d.DocCount != 3 {
		t.Fatalf("DocCount = %d", d.DocCount)
	}
	user := d.Paths[jsonval.Path("/user")]
	if user == nil || user.Count != 2 {
		t.Fatalf("/user stats = %+v", user)
	}
	if user.Obj == nil || user.Obj.Count != 2 || user.Obj.MinChildren != 1 || user.Obj.MaxChildren != 2 {
		t.Errorf("/user object stats = %+v", user.Obj)
	}
	name := d.Paths[jsonval.Path("/user/name")]
	if name == nil || name.Count != 2 || name.Str == nil || name.Str.Count != 2 {
		t.Errorf("/user/name stats = %+v", name)
	}
	age := d.Paths[jsonval.Path("/user/age")]
	if age == nil || age.Int == nil || age.Int.Min != 30 || age.Int.Max != 30 {
		t.Errorf("/user/age stats = %+v", age)
	}
	ok := d.Paths[jsonval.Path("/ok")]
	if ok == nil || ok.Bool == nil || ok.Bool.Count != 2 || ok.Bool.TrueCount != 1 {
		t.Errorf("/ok stats = %+v", ok)
	}
	root := d.Paths[jsonval.RootPath]
	if root == nil || root.Count != 3 || root.Obj == nil || root.Obj.Count != 3 {
		t.Errorf("root stats = %+v", root)
	}
}

func TestMixedTypesAtOnePath(t *testing.T) {
	d := buildDataset(t,
		`{"x":1}`, `{"x":2.5}`, `{"x":"s"}`, `{"x":null}`, `{"x":[1,2]}`, `{"x":{"y":1}}`, `{"x":true}`,
	)
	ps := d.Paths[jsonval.Path("/x")]
	if ps.Count != 7 {
		t.Fatalf("count = %d", ps.Count)
	}
	if ps.Int.Count != 1 || ps.Float.Count != 1 || ps.Str.Count != 1 ||
		ps.NullCount != 1 || ps.Arr.Count != 1 || ps.Obj.Count != 1 || ps.Bool.Count != 1 {
		t.Errorf("per-type counts wrong: %+v", ps)
	}
	if _, ok := d.Paths[jsonval.Path("/x/y")]; !ok {
		t.Errorf("nested path under mixed-type attribute missing")
	}
}

func TestArraysAreLeaves(t *testing.T) {
	d := buildDataset(t, `{"a":[{"inner":1},2,3]}`)
	if _, ok := d.Paths[jsonval.Path("/a/inner")]; ok {
		t.Errorf("analyzer recursed into array elements")
	}
	arr := d.Paths[jsonval.Path("/a")].Arr
	if arr == nil || arr.MinSize != 3 || arr.MaxSize != 3 {
		t.Errorf("array stats = %+v", arr)
	}
}

func TestIntFloatRanges(t *testing.T) {
	d := buildDataset(t, `{"n":5}`, `{"n":-3}`, `{"n":10}`, `{"n":2.5}`, `{"n":-7.5}`)
	ps := d.Paths[jsonval.Path("/n")]
	if ps.Int.Min != -3 || ps.Int.Max != 10 || ps.Int.Count != 3 {
		t.Errorf("int stats = %+v", ps.Int)
	}
	if ps.Float.Min != -7.5 || ps.Float.Max != 2.5 || ps.Float.Count != 2 {
		t.Errorf("float stats = %+v", ps.Float)
	}
}

func TestStringPrefixesAndValues(t *testing.T) {
	d := buildDataset(t, `{"s":"alpha"}`, `{"s":"alps"}`, `{"s":"beta"}`, `{"s":"al"}`)
	st := d.Paths[jsonval.Path("/s")].Str
	if st.Prefixes["alph"] != 1 || st.Prefixes["alps"] != 1 || st.Prefixes["beta"] != 1 || st.Prefixes["al"] != 1 {
		t.Errorf("prefixes = %v", st.Prefixes)
	}
	if st.Values["alpha"] != 1 || st.Values["al"] != 1 {
		t.Errorf("values = %v", st.Values)
	}
	if st.MinLen != 2 || st.MaxLen != 5 {
		t.Errorf("len bounds = %d..%d", st.MinLen, st.MaxLen)
	}
}

func TestPrefixDoesNotSplitRunes(t *testing.T) {
	d := buildDataset(t, `{"s":"ééé"}`) // 2-byte runes; prefix len 4 falls mid-rune
	st := d.Paths[jsonval.Path("/s")].Str
	for pre := range st.Prefixes {
		if !strings.HasPrefix("ééé", pre) {
			t.Errorf("prefix %q splits a rune", pre)
		}
	}
}

func TestStringCapsAndOverflow(t *testing.T) {
	cfg := Config{PrefixLen: 2, MaxPrefixes: 3, MaxValues: 2}
	d := NewDataset("capped", cfg)
	for _, s := range []string{"aa1", "bb2", "cc3", "dd4", "aa5"} {
		d.AddDocument(doc(t, `{"s":"`+s+`"}`))
	}
	st := d.Paths[jsonval.Path("/s")].Str
	if len(st.Prefixes) != 3 || !st.PrefixOverflow {
		t.Errorf("prefixes = %v overflow=%v", st.Prefixes, st.PrefixOverflow)
	}
	if st.Prefixes["aa"] != 2 {
		t.Errorf("existing prefix not counted past cap: %v", st.Prefixes)
	}
	if len(st.Values) != 2 || !st.ValueOverflow {
		t.Errorf("values = %v overflow=%v", st.Values, st.ValueOverflow)
	}
}

func TestMergeEquivalentToSequential(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	docs := make([]jsonval.Value, 200)
	for i := range docs {
		docs[i] = randomDoc(r)
	}
	seq := NewDataset("d", DefaultConfig())
	for _, v := range docs {
		seq.AddDocument(v)
	}
	a := NewDataset("d", DefaultConfig())
	b := NewDataset("d", DefaultConfig())
	for i, v := range docs {
		if i < 77 {
			a.AddDocument(v)
		} else {
			b.AddDocument(v)
		}
	}
	a.Merge(b)
	if err := a.Validate(); err != nil {
		t.Fatalf("merged Validate: %v", err)
	}
	assertDatasetsEqual(t, seq, a)
}

// randomDoc produces a small random object document.
func randomDoc(r *rand.Rand) jsonval.Value {
	keys := []string{"a", "b", "c", "d", "e"}
	n := 1 + r.Intn(4)
	members := make([]jsonval.Member, 0, n)
	used := map[string]bool{}
	for i := 0; i < n; i++ {
		k := keys[r.Intn(len(keys))]
		if used[k] {
			continue
		}
		used[k] = true
		var v jsonval.Value
		switch r.Intn(7) {
		case 0:
			v = jsonval.NullValue()
		case 1:
			v = jsonval.BoolValue(r.Intn(2) == 0)
		case 2:
			v = jsonval.IntValue(int64(r.Intn(100) - 50))
		case 3:
			v = jsonval.FloatValue(r.Float64()*10 - 5)
		case 4:
			v = jsonval.StringValue(string(rune('a'+r.Intn(5))) + "xyz"[:r.Intn(4)])
		case 5:
			v = jsonval.ArrayValue(jsonval.IntValue(1))
		default:
			v = jsonval.ObjectValue(jsonval.Member{Key: "in", Value: jsonval.IntValue(int64(r.Intn(10)))})
		}
		members = append(members, jsonval.Member{Key: k, Value: v})
	}
	return jsonval.ObjectValue(members...)
}

func assertDatasetsEqual(t *testing.T, want, got *Dataset) {
	t.Helper()
	if want.DocCount != got.DocCount {
		t.Fatalf("DocCount %d != %d", got.DocCount, want.DocCount)
	}
	if len(want.Paths) != len(got.Paths) {
		t.Fatalf("path count %d != %d", len(got.Paths), len(want.Paths))
	}
	for p, wps := range want.Paths {
		gps := got.Paths[p]
		if gps == nil {
			t.Fatalf("missing path %s", p)
		}
		// Histograms are approximate under merging (rebinned); exact
		// equality applies to everything else, plus histogram totals.
		wc, gc := *wps, *gps
		wc.NumHist, gc.NumHist = nil, nil
		if !reflect.DeepEqual(&wc, &gc) {
			t.Fatalf("path %s: %+v != %+v (str: %+v vs %+v)", p, gps, wps, gps.Str, wps.Str)
		}
		switch {
		case (wps.NumHist == nil) != (gps.NumHist == nil):
			t.Fatalf("path %s: histogram presence differs", p)
		case wps.NumHist != nil && wps.NumHist.Total != gps.NumHist.Total:
			t.Fatalf("path %s: histogram totals %d != %d", p, gps.NumHist.Total, wps.NumHist.Total)
		}
	}
}

func TestMergeCommutativeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Values: func(vs []reflect.Value, r *rand.Rand) {
		mk := func() *Dataset {
			d := NewDataset("d", DefaultConfig())
			for i, n := 0, r.Intn(20); i < n; i++ {
				d.AddDocument(randomDoc(r))
			}
			return d
		}
		vs[0] = reflect.ValueOf(mk())
		vs[1] = reflect.ValueOf(mk())
	}}
	prop := func(a, b *Dataset) bool {
		ab := NewDataset("d", DefaultConfig())
		ab.Merge(a)
		ab.Merge(b)
		ba := NewDataset("d", DefaultConfig())
		ba.Merge(b)
		ba.Merge(a)
		if ab.DocCount != ba.DocCount || len(ab.Paths) != len(ba.Paths) {
			return false
		}
		for p, ps := range ab.Paths {
			if !reflect.DeepEqual(ps, ba.Paths[p]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	d := buildDataset(t,
		`{"n":1,"s":"aaa"}`, `{"n":2,"s":"aab"}`, `{"n":3,"s":"bbb"}`, `{"n":4}`,
	)
	half := d.Scale("half", 0.5)
	if half.Name != "half" {
		t.Errorf("scaled name = %q", half.Name)
	}
	if half.DocCount != 2 {
		t.Errorf("scaled DocCount = %d", half.DocCount)
	}
	n := half.Paths[jsonval.Path("/n")]
	if n.Count != 2 || n.Int.Min != 1 || n.Int.Max != 4 {
		t.Errorf("scaled /n = %+v int=%+v", n, n.Int)
	}
	s := half.Paths[jsonval.Path("/s")]
	if s.Count != 2 { // round(3*0.5)=2
		t.Errorf("scaled /s count = %d", s.Count)
	}
}

func TestScaleTinySelectivityKeepsPaths(t *testing.T) {
	d := buildDataset(t, `{"a":1}`, `{"a":2}`)
	tiny := d.Scale("tiny", 0.0001)
	if ps := tiny.Paths[jsonval.Path("/a")]; ps == nil || ps.Count < 1 {
		t.Errorf("tiny scale dropped path stats: %+v", ps)
	}
}

func TestScaleClampsFactor(t *testing.T) {
	d := buildDataset(t, `{"a":1}`)
	if up := d.Scale("up", 5); up.DocCount != 1 {
		t.Errorf("factor > 1 not clamped: %d", up.DocCount)
	}
	if down := d.Scale("down", -2); down.DocCount != 0 {
		t.Errorf("factor < 0 not clamped: %d", down.DocCount)
	}
}

func TestSortedPathsDeterministic(t *testing.T) {
	d := buildDataset(t, `{"b":1,"a":{"z":1,"m":2},"c":3}`)
	got := d.SortedPaths()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("paths not sorted: %v", got)
		}
	}
	if len(got) != 6 { // root, /a, /a/m, /a/z, /b, /c
		t.Errorf("path count = %d: %v", len(got), got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := buildDataset(t, `{"a":1}`)
	d.Paths[jsonval.Path("/a")].Int.Min = 99 // > max
	if err := d.Validate(); err == nil {
		t.Errorf("Validate accepted min > max")
	}
	d2 := buildDataset(t, `{"a":true}`)
	d2.Paths[jsonval.Path("/a")].Bool.TrueCount = 5
	if err := d2.Validate(); err == nil {
		t.Errorf("Validate accepted true count > count")
	}
	d3 := buildDataset(t, `{"a":1}`)
	d3.Paths[jsonval.Path("/a")].Count = 7
	if err := d3.Validate(); err == nil {
		t.Errorf("Validate accepted inconsistent typed sums")
	}
}

func TestConfigDefaults(t *testing.T) {
	d := NewDataset("d", Config{})
	cfg := d.Config()
	if cfg.PrefixLen != DefaultPrefixLen || cfg.MaxPrefixes != DefaultMaxPrefixes || cfg.MaxValues != DefaultMaxValues {
		t.Errorf("zero config not defaulted: %+v", cfg)
	}
}
