package jsonstats

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"github.com/joda-explore/betze/internal/jsonval"
)

func TestCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	d := NewDataset("Twitter", Config{PrefixLen: 3, MaxPrefixes: 10, MaxValues: 5})
	for i := 0; i < 150; i++ {
		d.AddDocument(randomDoc(r))
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name || back.DocCount != d.DocCount {
		t.Fatalf("header mismatch: %s/%d vs %s/%d", back.Name, back.DocCount, d.Name, d.DocCount)
	}
	if back.Config() != d.Config() {
		t.Fatalf("config mismatch: %+v vs %+v", back.Config(), d.Config())
	}
	assertDatasetsEqual(t, d, back)
	if err := back.Validate(); err != nil {
		t.Fatalf("Validate after round trip: %v", err)
	}
}

func TestCodecRootPathSurvives(t *testing.T) {
	d := buildDataset(t, `{"a":1}`)
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"/"`) {
		t.Errorf("root path missing from serialised form: %s", data)
	}
	var back Dataset
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Paths[jsonval.RootPath] == nil {
		t.Errorf("root path lost in round trip")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader("not json")); err == nil {
		t.Errorf("garbage accepted")
	}
}

func TestCodecListingTwoShape(t *testing.T) {
	// The serialised form follows the structure of Listing 2: named paths
	// with per-type statistics.
	d := buildDataset(t,
		`{"user":{"name":"x"}}`,
		`{"user":{"name":"y","id":3}}`,
	)
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	paths, ok := m["paths"].(map[string]any)
	if !ok {
		t.Fatalf("no paths object in %s", data)
	}
	user, ok := paths["/user"].(map[string]any)
	if !ok {
		t.Fatalf("no /user entry: %v", paths)
	}
	if user["count"].(float64) != 2 {
		t.Errorf("/user count = %v", user["count"])
	}
	if _, ok := user["object"]; !ok {
		t.Errorf("/user has no object stats: %v", user)
	}
	if _, ok := paths["/user/name"].(map[string]any)["string"]; !ok {
		t.Errorf("/user/name has no string stats")
	}
}
