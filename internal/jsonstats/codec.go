package jsonstats

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/joda-explore/betze/internal/jsonval"
)

// The on-disk analysis-file format (cf. Listing 2 of the paper). It can be
// "stored and shared for future generator runs without the actual dataset".

type datasetJSON struct {
	Name     string                   `json:"name"`
	DocCount int64                    `json:"doc_count"`
	Config   configJSON               `json:"config"`
	Paths    map[string]pathStatsJSON `json:"paths"`
}

type configJSON struct {
	PrefixLen        int `json:"prefix_len"`
	MaxPrefixes      int `json:"max_prefixes"`
	MaxValues        int `json:"max_values"`
	HistogramBuckets int `json:"histogram_buckets,omitempty"`
}

type histogramJSON struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Total  int64     `json:"total"`
}

type pathStatsJSON struct {
	Count     int64            `json:"count"`
	NullCount int64            `json:"null_count,omitempty"`
	Bool      *BoolStats       `json:"bool,omitempty"`
	Int       *IntStats        `json:"int,omitempty"`
	Float     *FloatStats      `json:"float,omitempty"`
	Str       *stringStatsJSON `json:"string,omitempty"`
	Obj       *ObjectStats     `json:"object,omitempty"`
	Arr       *ArrayStats      `json:"array,omitempty"`
	NumHist   *histogramJSON   `json:"numeric_histogram,omitempty"`
}

type stringStatsJSON struct {
	Count          int64            `json:"count"`
	Prefixes       map[string]int64 `json:"prefixes,omitempty"`
	PrefixOverflow bool             `json:"prefix_overflow,omitempty"`
	Values         map[string]int64 `json:"values,omitempty"`
	ValueOverflow  bool             `json:"value_overflow,omitempty"`
	MinLen         int              `json:"min_len"`
	MaxLen         int              `json:"max_len"`
}

// MarshalJSON encodes the summary in the analysis-file format.
func (d *Dataset) MarshalJSON() ([]byte, error) {
	out := datasetJSON{
		Name:     d.Name,
		DocCount: d.DocCount,
		Config: configJSON{
			PrefixLen:        d.cfg.PrefixLen,
			MaxPrefixes:      d.cfg.MaxPrefixes,
			MaxValues:        d.cfg.MaxValues,
			HistogramBuckets: d.cfg.HistogramBuckets,
		},
		Paths: make(map[string]pathStatsJSON, len(d.Paths)),
	}
	for p, ps := range d.Paths {
		e := pathStatsJSON{
			Count:     ps.Count,
			NullCount: ps.NullCount,
			Bool:      ps.Bool,
			Int:       ps.Int,
			Float:     ps.Float,
			Obj:       ps.Obj,
			Arr:       ps.Arr,
		}
		if ps.Str != nil {
			e.Str = &stringStatsJSON{
				Count:          ps.Str.Count,
				Prefixes:       ps.Str.Prefixes,
				PrefixOverflow: ps.Str.PrefixOverflow,
				Values:         ps.Str.Values,
				ValueOverflow:  ps.Str.ValueOverflow,
				MinLen:         ps.Str.MinLen,
				MaxLen:         ps.Str.MaxLen,
			}
		}
		if ps.NumHist != nil {
			bounds, counts, total := ps.NumHist.Snapshot()
			e.NumHist = &histogramJSON{Bounds: bounds, Counts: counts, Total: total}
		}
		out.Paths[p.String()] = e
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes an analysis file produced by MarshalJSON.
func (d *Dataset) UnmarshalJSON(data []byte) error {
	var in datasetJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("jsonstats: decoding analysis file: %w", err)
	}
	cfg := Config{
		PrefixLen:        in.Config.PrefixLen,
		MaxPrefixes:      in.Config.MaxPrefixes,
		MaxValues:        in.Config.MaxValues,
		HistogramBuckets: in.Config.HistogramBuckets,
	}
	*d = *NewDataset(in.Name, cfg)
	d.DocCount = in.DocCount
	for ps, e := range in.Paths {
		stats := &PathStats{
			Count:     e.Count,
			NullCount: e.NullCount,
			Bool:      e.Bool,
			Int:       e.Int,
			Float:     e.Float,
			Obj:       e.Obj,
			Arr:       e.Arr,
		}
		if e.Str != nil {
			stats.Str = &StringStats{
				Count:          e.Str.Count,
				Prefixes:       e.Str.Prefixes,
				PrefixOverflow: e.Str.PrefixOverflow,
				Values:         e.Str.Values,
				ValueOverflow:  e.Str.ValueOverflow,
				MinLen:         e.Str.MinLen,
				MaxLen:         e.Str.MaxLen,
			}
			if stats.Str.Prefixes == nil {
				stats.Str.Prefixes = make(map[string]int64)
			}
			if stats.Str.Values == nil {
				stats.Str.Values = make(map[string]int64)
			}
		}
		if e.NumHist != nil {
			stats.NumHist = FromSnapshot(e.NumHist.Bounds, e.NumHist.Counts, e.NumHist.Total)
		}
		d.Paths[jsonval.ParsePath(ps)] = stats
	}
	return nil
}

// WriteTo streams the analysis file to w with stable indentation, so files
// diff cleanly across generator versions.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// ReadFrom loads an analysis file.
func ReadFrom(r io.Reader) (*Dataset, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("jsonstats: reading analysis file: %w", err)
	}
	var d Dataset
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	return &d, nil
}
