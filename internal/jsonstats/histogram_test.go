package jsonstats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramFractionLEUniform(t *testing.T) {
	h := NewHistogram(16)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i % 100))
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{-1, 0}, {0, 0}, {25, 0.25}, {50, 0.5}, {75, 0.75}, {99, 1}, {200, 1},
	}
	for _, c := range cases {
		got := h.FractionLE(c.x)
		if math.Abs(got-c.want) > 0.08 {
			t.Errorf("FractionLE(%g) = %.3f, want ~%.2f", c.x, got, c.want)
		}
	}
}

func TestHistogramQuantileInvertsFraction(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	h := NewHistogram(32)
	for i := 0; i < 20000; i++ {
		h.Observe(r.NormFloat64() * 10)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		v := h.Quantile(q)
		back := h.FractionLE(v)
		if math.Abs(back-q) > 0.05 {
			t.Errorf("FractionLE(Quantile(%g)) = %.3f", q, back)
		}
	}
	if h.Quantile(0) != h.Lo() || h.Quantile(1) != h.Hi() {
		t.Errorf("extreme quantiles not at bounds")
	}
}

func TestHistogramCapturesSkew(t *testing.T) {
	// 90% of values at the bottom of the range, 10% spread high: the
	// uniform assumption would put the median mid-range; the histogram
	// must place it low.
	r := rand.New(rand.NewSource(5))
	h := NewHistogram(16)
	for i := 0; i < 10000; i++ {
		if r.Float64() < 0.9 {
			h.Observe(r.Float64() * 10) // [0, 10)
		} else {
			h.Observe(10 + r.Float64()*990) // [10, 1000)
		}
	}
	median := h.Quantile(0.5)
	if median > 100 {
		t.Errorf("median estimate %.1f ignores the skew (uniform would give ~500)", median)
	}
	if got := h.FractionLE(10); math.Abs(got-0.9) > 0.1 {
		t.Errorf("FractionLE(10) = %.3f, want ~0.9", got)
	}
}

func TestHistogramSmallSamples(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []float64{1, 2, 3} {
		h.Observe(v)
	}
	if h.Total != 3 {
		t.Errorf("Total = %d", h.Total)
	}
	if q := h.Quantile(0.5); q < 1 || q > 3 {
		t.Errorf("median of {1,2,3} = %g", q)
	}
	empty := NewHistogram(8)
	if empty.FractionLE(5) != 0 {
		t.Errorf("empty FractionLE != 0")
	}
	if empty.Quantile(0.5) != 0 {
		t.Errorf("empty Quantile = %g", empty.Quantile(0.5))
	}
}

func TestHistogramIgnoresNonFinite(t *testing.T) {
	h := NewHistogram(8)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(5)
	if h.Total != 1 {
		t.Errorf("non-finite values counted: %d", h.Total)
	}
}

func TestHistogramMergeCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	build := func(seed int64, n int, scale float64) *Histogram {
		rr := rand.New(rand.NewSource(seed))
		h := NewHistogram(16)
		for i := 0; i < n; i++ {
			h.Observe(rr.Float64() * scale)
		}
		return h
	}
	_ = r
	a := build(1, 1000, 50)
	b := build(2, 500, 500)
	ab := NewHistogram(16)
	ab.Merge(a)
	ab.Merge(b)
	ba := NewHistogram(16)
	ba.Merge(b)
	ba.Merge(a)
	if ab.Total != ba.Total || ab.Lo() != ba.Lo() || ab.Hi() != ba.Hi() {
		t.Fatalf("merge headers differ: %+v vs %+v", ab, ba)
	}
	for i := range ab.Counts {
		if ab.Counts[i] != ba.Counts[i] {
			t.Fatalf("merge not commutative at bucket %d: %d vs %d", i, ab.Counts[i], ba.Counts[i])
		}
	}
}

func TestHistogramMergePreservesTotalsAndApproximatesShape(t *testing.T) {
	a := NewHistogram(16)
	b := NewHistogram(16)
	whole := NewHistogram(16)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		v := r.Float64() * 100
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	if a.Total != whole.Total {
		t.Fatalf("merged total %d != %d", a.Total, whole.Total)
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		if d := math.Abs(a.Quantile(q) - whole.Quantile(q)); d > 15 {
			t.Errorf("merged quantile %g off by %.1f", q, d)
		}
	}
}

func TestHistogramMergeIntoEmptyCopies(t *testing.T) {
	src := NewHistogram(16)
	for i := 0; i < 100; i++ {
		src.Observe(float64(i))
	}
	dst := NewHistogram(16)
	dst.Merge(src)
	if dst.Total != 100 || dst.Lo() != src.Lo() || dst.Hi() != src.Hi() {
		t.Errorf("empty-merge copy wrong: %+v", dst)
	}
	// nil and empty merges are no-ops.
	dst.Merge(nil)
	dst.Merge(NewHistogram(16))
	if dst.Total != 100 {
		t.Errorf("no-op merges changed total: %d", dst.Total)
	}
}

func TestHistogramScale(t *testing.T) {
	h := NewHistogram(8)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i))
	}
	half := h.Scale(0.5)
	if half.Total < 400 || half.Total > 600 {
		t.Errorf("scaled total = %d", half.Total)
	}
	if h.Total != 1000 {
		t.Errorf("source histogram mutated: %d", h.Total)
	}
	if math.Abs(half.Quantile(0.5)-h.Quantile(0.5)) > 150 {
		t.Errorf("scaling shifted the median: %g vs %g", half.Quantile(0.5), h.Quantile(0.5))
	}
}

func TestHistogramSnapshotRoundTrip(t *testing.T) {
	h := NewHistogram(16)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		h.Observe(r.ExpFloat64() * 20)
	}
	bounds, counts, total := h.Snapshot()
	back := FromSnapshot(bounds, counts, total)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Errorf("quantile %g differs after snapshot round trip", q)
		}
	}
}

func TestDatasetHistogramsEndToEnd(t *testing.T) {
	d := NewDataset("d", DefaultConfig())
	for i := 0; i < 2000; i++ {
		d.AddDocument(doc(t, `{"n":`+itoa(i%100)+`}`))
	}
	ps := d.Paths["/n"]
	if ps.NumHist == nil || ps.NumHist.Total != 2000 {
		t.Fatalf("histogram not collected: %+v", ps.NumHist)
	}
	if med := ps.NumHist.Quantile(0.5); med < 35 || med > 65 {
		t.Errorf("median = %g", med)
	}
	// Disabled via config.
	off := NewDataset("d", Config{HistogramBuckets: -1})
	off.AddDocument(doc(t, `{"n":1}`))
	if off.Paths["/n"].NumHist != nil {
		t.Errorf("histogram collected despite negative bucket config")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
