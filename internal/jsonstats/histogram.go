package jsonstats

import (
	"math"
	"sort"
)

// DefaultHistogramBuckets is the bucket count of numeric histograms.
const DefaultHistogramBuckets = 16

// histogramBuffer is how many values a histogram buffers before fixing its
// bucket boundaries.
const histogramBuffer = 256

// Histogram is a streaming equi-depth histogram over the numeric values of
// one path. The paper's future-work section proposes histograms "to capture
// the distribution of values and prevent wrong decisions due to skewed
// data"; the float-comparison factory consults them when present.
//
// Bucket boundaries are fixed at the quantiles of a buffered sample —
// equi-depth, like PostgreSQL's pg_stats histogram_bounds — so heavily
// skewed distributions get fine resolution where the mass is. Later values
// fall into the fixed buckets (clamped at the edges); merging widens the
// receiving bounds and rebins the other side's mass at bucket midpoints,
// which keeps estimates within roughly one bucket of truth.
type Histogram struct {
	// Bounds holds the buckets+1 boundary values (valid once built).
	Bounds []float64
	// Counts holds per-bucket observation counts (len(Bounds)-1).
	Counts []int64
	// Total is the number of observed values.
	Total int64

	buckets int
	pending []float64
}

// NewHistogram returns an empty histogram with the given bucket count
// (0 means DefaultHistogramBuckets).
func NewHistogram(buckets int) *Histogram {
	if buckets <= 0 {
		buckets = DefaultHistogramBuckets
	}
	return &Histogram{buckets: buckets}
}

// Lo returns the lower bound of the value range (0 when empty).
func (h *Histogram) Lo() float64 {
	h.finalize()
	return h.Bounds[0]
}

// Hi returns the upper bound of the value range (0 when empty).
func (h *Histogram) Hi() float64 {
	h.finalize()
	return h.Bounds[len(h.Bounds)-1]
}

// Observe folds one value in.
func (h *Histogram) Observe(f float64) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return
	}
	h.Total++
	if h.Counts == nil {
		h.pending = append(h.pending, f)
		if len(h.pending) >= histogramBuffer {
			h.build()
		}
		return
	}
	h.Counts[h.bucket(f)]++
}

// build fixes equi-depth bucket boundaries from the buffered sample.
func (h *Histogram) build() {
	if h.Counts != nil {
		return
	}
	if h.buckets <= 0 {
		h.buckets = DefaultHistogramBuckets
	}
	sample := append([]float64(nil), h.pending...)
	sort.Float64s(sample)
	h.Bounds = make([]float64, h.buckets+1)
	if len(sample) == 0 {
		// Degenerate all-zero bounds; counts stay empty.
		h.Counts = make([]int64, h.buckets)
		h.pending = nil
		return
	}
	for i := 0; i <= h.buckets; i++ {
		idx := i * (len(sample) - 1) / h.buckets
		h.Bounds[i] = sample[idx]
	}
	h.Counts = make([]int64, h.buckets)
	for _, f := range sample {
		h.Counts[h.bucket(f)]++
	}
	h.pending = nil
}

// bucket maps a value to its bucket index, clamping out-of-range values
// into the edge buckets.
func (h *Histogram) bucket(f float64) int {
	n := len(h.Counts)
	// First bucket whose upper bound admits f.
	idx := sort.SearchFloat64s(h.Bounds[1:n], f)
	if idx >= n {
		return n - 1
	}
	return idx
}

// finalize makes the histogram queryable regardless of how few values were
// seen.
func (h *Histogram) finalize() {
	if h.Counts == nil {
		h.build()
	}
}

// FractionLE estimates the fraction of observed values <= x, interpolating
// linearly inside the containing bucket.
func (h *Histogram) FractionLE(x float64) float64 {
	h.finalize()
	if h.Total == 0 {
		return 0
	}
	if x < h.Bounds[0] {
		return 0
	}
	if x >= h.Bounds[len(h.Bounds)-1] {
		return 1
	}
	idx := h.bucket(x)
	var below int64
	for i := 0; i < idx; i++ {
		below += h.Counts[i]
	}
	lo, hi := h.Bounds[idx], h.Bounds[idx+1]
	frac := 1.0
	if hi > lo {
		frac = (x - lo) / (hi - lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
	}
	below += int64(math.Round(frac * float64(h.Counts[idx])))
	return float64(below) / float64(h.Total)
}

// Quantile returns the approximate value below which fraction q of the
// observations fall.
func (h *Histogram) Quantile(q float64) float64 {
	h.finalize()
	if h.Total == 0 {
		return h.Bounds[0]
	}
	if q <= 0 {
		return h.Bounds[0]
	}
	if q >= 1 {
		return h.Bounds[len(h.Bounds)-1]
	}
	target := q * float64(h.Total)
	var cum float64
	for i, c := range h.Counts {
		next := cum + float64(c)
		if next >= target {
			lo, hi := h.Bounds[i], h.Bounds[i+1]
			if c == 0 || hi <= lo {
				return lo
			}
			return lo + (target-cum)/float64(c)*(hi-lo)
		}
		cum = next
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Merge folds other into h. Merging into an empty histogram copies the
// other side exactly; otherwise both sides are reduced to weighted bucket
// midpoints and a fresh equi-depth histogram is built over their union —
// a symmetric construction, so the two-way merge is commutative.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.Total == 0 {
		return
	}
	if h.Total == 0 {
		c := other.clone()
		c.finalize()
		*h = *c
		return
	}
	h.finalize()
	oc := other.clone()
	oc.finalize()

	type weighted struct {
		v float64
		c int64
	}
	var points []weighted
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, src := range []*Histogram{h, oc} {
		lo = math.Min(lo, src.Bounds[0])
		hi = math.Max(hi, src.Bounds[len(src.Bounds)-1])
		for i, c := range src.Counts {
			if c == 0 {
				continue
			}
			points = append(points, weighted{v: (src.Bounds[i] + src.Bounds[i+1]) / 2, c: c})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].v < points[j].v })

	buckets := len(h.Counts)
	total := h.Total + oc.Total
	bounds := make([]float64, buckets+1)
	bounds[0], bounds[buckets] = lo, hi
	// Interior bounds at the weighted quantiles of the midpoint mass.
	var cum int64
	pi := 0
	for b := 1; b < buckets; b++ {
		target := int64(math.Round(float64(b) * float64(total) / float64(buckets)))
		for pi < len(points) && cum < target {
			cum += points[pi].c
			pi++
		}
		if pi > 0 {
			bounds[b] = points[pi-1].v
		} else {
			bounds[b] = lo
		}
	}
	merged := &Histogram{Bounds: bounds, Counts: make([]int64, buckets), Total: total, buckets: buckets}
	for _, p := range points {
		merged.Counts[merged.bucket(p.v)] += p.c
	}
	*h = *merged
}

// clone copies the histogram (pending buffer included).
func (h *Histogram) clone() *Histogram {
	c := &Histogram{Total: h.Total, buckets: h.buckets}
	if h.Bounds != nil {
		c.Bounds = append([]float64(nil), h.Bounds...)
	}
	if h.Counts != nil {
		c.Counts = append([]int64(nil), h.Counts...)
	}
	if h.pending != nil {
		c.pending = append([]float64(nil), h.pending...)
	}
	return c
}

// Snapshot finalizes the histogram and returns its serialisable state.
func (h *Histogram) Snapshot() (bounds []float64, counts []int64, total int64) {
	h.finalize()
	return append([]float64(nil), h.Bounds...), append([]int64(nil), h.Counts...), h.Total
}

// FromSnapshot rebuilds a histogram from its serialised state.
func FromSnapshot(bounds []float64, counts []int64, total int64) *Histogram {
	return &Histogram{Bounds: bounds, Counts: counts, Total: total, buckets: len(counts)}
}

// Scale returns a copy with counts scaled by the selectivity factor.
func (h *Histogram) Scale(f float64) *Histogram {
	c := h.clone()
	c.finalize()
	c.Total = 0
	for i, n := range c.Counts {
		c.Counts[i] = scaleCount(n, f)
		c.Total += c.Counts[i]
	}
	return c
}
