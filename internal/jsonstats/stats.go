// Package jsonstats defines the statistical dataset summary produced by the
// BETZE analyzer (§IV-A of the paper, Listing 2) and consumed by the query
// generator.
//
// For every distinct attribute path of a dataset, the summary records how
// many documents contain the path and, per JSON type, the statistics the
// predicate factories need: min/max for integer and floating-point values,
// the number of true values for booleans, child-count ranges for objects and
// arrays, and counted string prefixes (plus a bounded sample of exact string
// values, an extension that makes string-equality predicates estimable).
package jsonstats

import (
	"fmt"
	"math"
	"sort"

	"github.com/joda-explore/betze/internal/jsonval"
)

// Default bounds for the string statistics. They cap the size of the
// analysis file on datasets with high-cardinality string attributes.
const (
	DefaultPrefixLen   = 4
	DefaultMaxPrefixes = 64
	DefaultMaxValues   = 32
)

// Config bounds what the string statistics track and whether numeric
// histograms are collected.
type Config struct {
	// PrefixLen is the length (in bytes) of tracked string prefixes.
	// Strings shorter than PrefixLen contribute themselves.
	PrefixLen int
	// MaxPrefixes caps the number of distinct prefixes kept per path.
	MaxPrefixes int
	// MaxValues caps the number of distinct exact string values sampled
	// per path.
	MaxValues int
	// HistogramBuckets is the bucket count of the per-path numeric
	// histograms (the paper's future-work extension for skew-aware
	// selectivity prediction). 0 means DefaultHistogramBuckets; negative
	// disables histograms.
	HistogramBuckets int
}

// DefaultConfig returns the bounds used by the paper-scale analyzer runs.
func DefaultConfig() Config {
	return Config{
		PrefixLen:   DefaultPrefixLen,
		MaxPrefixes: DefaultMaxPrefixes,
		MaxValues:   DefaultMaxValues,
	}
}

func (c Config) withDefaults() Config {
	if c.PrefixLen <= 0 {
		c.PrefixLen = DefaultPrefixLen
	}
	if c.MaxPrefixes <= 0 {
		c.MaxPrefixes = DefaultMaxPrefixes
	}
	if c.MaxValues <= 0 {
		c.MaxValues = DefaultMaxValues
	}
	if c.HistogramBuckets == 0 {
		c.HistogramBuckets = DefaultHistogramBuckets
	}
	return c
}

// histogramsEnabled reports whether numeric histograms are collected.
func (c Config) histogramsEnabled() bool { return c.HistogramBuckets > 0 }

// Dataset is the statistical summary of one dataset. It is the unit the
// generator works on: initial datasets get a summary from the analyzer, and
// derived datasets get one by scaling their parent's summary (§IV-D).
type Dataset struct {
	// Name identifies the dataset (e.g. "Twitter").
	Name string
	// DocCount is the number of documents summarised.
	DocCount int64
	// Paths maps every attribute path seen in the dataset to its
	// statistics. The root path is present whenever DocCount > 0 and
	// describes the documents themselves.
	Paths map[jsonval.Path]*PathStats

	cfg Config
}

// NewDataset returns an empty summary with the given string-stat bounds.
func NewDataset(name string, cfg Config) *Dataset {
	return &Dataset{
		Name:  name,
		Paths: make(map[jsonval.Path]*PathStats),
		cfg:   cfg.withDefaults(),
	}
}

// Config returns the string-statistic bounds the summary was built with.
func (d *Dataset) Config() Config { return d.cfg }

// PathStats aggregates the statistics of one attribute path. A pointer field
// is nil until a value of that type has been observed at the path.
type PathStats struct {
	// Count is the number of documents that contain the path.
	Count int64
	// NullCount is the number of documents with a JSON null at the path.
	NullCount int64

	Bool  *BoolStats
	Int   *IntStats
	Float *FloatStats
	Str   *StringStats
	Obj   *ObjectStats
	Arr   *ArrayStats

	// NumHist is the combined histogram over the path's integer and
	// floating-point values; nil when histograms are disabled or no
	// numbers were observed.
	NumHist *Histogram
}

// IntStats summarises integer occurrences at a path.
type IntStats struct {
	Count    int64
	Min, Max int64
}

// FloatStats summarises floating-point occurrences at a path.
type FloatStats struct {
	Count    int64
	Min, Max float64
}

// BoolStats summarises boolean occurrences at a path. The number of false
// values is Count - TrueCount.
type BoolStats struct {
	Count     int64
	TrueCount int64
}

// StringStats summarises string occurrences at a path.
type StringStats struct {
	Count int64
	// Prefixes counts occurrences per fixed-length prefix. If
	// PrefixOverflow is set, prefixes beyond the cap were dropped and the
	// map undercounts the tail.
	Prefixes       map[string]int64
	PrefixOverflow bool
	// Values samples exact values with their occurrence counts; bounded,
	// with ValueOverflow marking that the sample is partial.
	Values        map[string]int64
	ValueOverflow bool
	// MinLen/MaxLen bound the observed string lengths in bytes.
	MinLen, MaxLen int
}

// ObjectStats summarises object occurrences at a path.
type ObjectStats struct {
	Count                    int64
	MinChildren, MaxChildren int
}

// ArrayStats summarises array occurrences at a path.
type ArrayStats struct {
	Count            int64
	MinSize, MaxSize int
}

// stats returns the PathStats for p, creating it if needed.
func (d *Dataset) stats(p jsonval.Path) *PathStats {
	ps := d.Paths[p]
	if ps == nil {
		ps = &PathStats{}
		d.Paths[p] = ps
	}
	return ps
}

// AddDocument folds one document into the summary.
func (d *Dataset) AddDocument(doc jsonval.Value) {
	d.DocCount++
	d.observe(jsonval.RootPath, doc)
}

func (d *Dataset) observe(p jsonval.Path, v jsonval.Value) {
	ps := d.stats(p)
	ps.Count++
	switch v.Kind() {
	case jsonval.Null:
		ps.NullCount++
	case jsonval.Bool:
		if ps.Bool == nil {
			ps.Bool = &BoolStats{}
		}
		ps.Bool.Count++
		if v.Bool() {
			ps.Bool.TrueCount++
		}
	case jsonval.Int:
		n := v.Int()
		if ps.Int == nil {
			ps.Int = &IntStats{Min: n, Max: n}
		}
		ps.Int.Count++
		ps.Int.Min = min(ps.Int.Min, n)
		ps.Int.Max = max(ps.Int.Max, n)
		d.observeNumber(ps, float64(n))
	case jsonval.Float:
		f := v.Float()
		if ps.Float == nil {
			ps.Float = &FloatStats{Min: f, Max: f}
		}
		ps.Float.Count++
		ps.Float.Min = math.Min(ps.Float.Min, f)
		ps.Float.Max = math.Max(ps.Float.Max, f)
		d.observeNumber(ps, f)
	case jsonval.String:
		s := v.Str()
		if ps.Str == nil {
			ps.Str = &StringStats{
				Prefixes: make(map[string]int64),
				Values:   make(map[string]int64),
				MinLen:   len(s),
				MaxLen:   len(s),
			}
		}
		st := ps.Str
		st.Count++
		st.MinLen = min(st.MinLen, len(s))
		st.MaxLen = max(st.MaxLen, len(s))
		pre := prefixOf(s, d.cfg.PrefixLen)
		if _, ok := st.Prefixes[pre]; ok || len(st.Prefixes) < d.cfg.MaxPrefixes {
			st.Prefixes[pre]++
		} else {
			st.PrefixOverflow = true
		}
		if _, ok := st.Values[s]; ok || len(st.Values) < d.cfg.MaxValues {
			st.Values[s]++
		} else {
			st.ValueOverflow = true
		}
	case jsonval.Object:
		n := v.Len()
		if ps.Obj == nil {
			ps.Obj = &ObjectStats{MinChildren: n, MaxChildren: n}
		}
		ps.Obj.Count++
		ps.Obj.MinChildren = min(ps.Obj.MinChildren, n)
		ps.Obj.MaxChildren = max(ps.Obj.MaxChildren, n)
		for _, m := range v.Members() {
			d.observe(p.Child(m.Key), m.Value)
		}
	case jsonval.Array:
		n := v.Len()
		if ps.Arr == nil {
			ps.Arr = &ArrayStats{MinSize: n, MaxSize: n}
		}
		ps.Arr.Count++
		ps.Arr.MinSize = min(ps.Arr.MinSize, n)
		ps.Arr.MaxSize = max(ps.Arr.MaxSize, n)
		// Arrays are leaves: the analyzer describes them by size only.
	}
}

func (d *Dataset) observeNumber(ps *PathStats, f float64) {
	if !d.cfg.histogramsEnabled() {
		return
	}
	if ps.NumHist == nil {
		ps.NumHist = NewHistogram(d.cfg.HistogramBuckets)
	}
	ps.NumHist.Observe(f)
}

func prefixOf(s string, n int) string {
	if len(s) <= n {
		return s
	}
	// Avoid splitting a multi-byte rune.
	for n > 0 && s[n]&0xC0 == 0x80 {
		n--
	}
	return s[:n]
}

// Merge folds other into d. The receiving summary must have been built with
// the same Config for the string-stat bounds to remain meaningful; counts
// are combined regardless. Merge supports the parallel analyzer: workers
// build shard summaries that are merged pairwise.
func (d *Dataset) Merge(other *Dataset) {
	d.DocCount += other.DocCount
	for p, ops := range other.Paths {
		ps := d.stats(p)
		ps.Count += ops.Count
		ps.NullCount += ops.NullCount
		if ops.Bool != nil {
			if ps.Bool == nil {
				ps.Bool = &BoolStats{}
			}
			ps.Bool.Count += ops.Bool.Count
			ps.Bool.TrueCount += ops.Bool.TrueCount
		}
		if ops.Int != nil {
			if ps.Int == nil {
				ps.Int = &IntStats{Min: ops.Int.Min, Max: ops.Int.Max}
			}
			ps.Int.Count += ops.Int.Count
			ps.Int.Min = min(ps.Int.Min, ops.Int.Min)
			ps.Int.Max = max(ps.Int.Max, ops.Int.Max)
		}
		if ops.Float != nil {
			if ps.Float == nil {
				ps.Float = &FloatStats{Min: ops.Float.Min, Max: ops.Float.Max}
			}
			ps.Float.Count += ops.Float.Count
			ps.Float.Min = math.Min(ps.Float.Min, ops.Float.Min)
			ps.Float.Max = math.Max(ps.Float.Max, ops.Float.Max)
		}
		if ops.Str != nil {
			if ps.Str == nil {
				ps.Str = &StringStats{
					Prefixes: make(map[string]int64),
					Values:   make(map[string]int64),
					MinLen:   ops.Str.MinLen,
					MaxLen:   ops.Str.MaxLen,
				}
			}
			st := ps.Str
			st.Count += ops.Str.Count
			st.MinLen = min(st.MinLen, ops.Str.MinLen)
			st.MaxLen = max(st.MaxLen, ops.Str.MaxLen)
			st.PrefixOverflow = st.PrefixOverflow || ops.Str.PrefixOverflow
			st.ValueOverflow = st.ValueOverflow || ops.Str.ValueOverflow
			for pre, c := range ops.Str.Prefixes {
				if _, ok := st.Prefixes[pre]; ok || len(st.Prefixes) < d.cfg.MaxPrefixes {
					st.Prefixes[pre] += c
				} else {
					st.PrefixOverflow = true
				}
			}
			for s, c := range ops.Str.Values {
				if _, ok := st.Values[s]; ok || len(st.Values) < d.cfg.MaxValues {
					st.Values[s] += c
				} else {
					st.ValueOverflow = true
				}
			}
		}
		if ops.Obj != nil {
			if ps.Obj == nil {
				ps.Obj = &ObjectStats{MinChildren: ops.Obj.MinChildren, MaxChildren: ops.Obj.MaxChildren}
			}
			ps.Obj.Count += ops.Obj.Count
			ps.Obj.MinChildren = min(ps.Obj.MinChildren, ops.Obj.MinChildren)
			ps.Obj.MaxChildren = max(ps.Obj.MaxChildren, ops.Obj.MaxChildren)
		}
		if ops.Arr != nil {
			if ps.Arr == nil {
				ps.Arr = &ArrayStats{MinSize: ops.Arr.MinSize, MaxSize: ops.Arr.MaxSize}
			}
			ps.Arr.Count += ops.Arr.Count
			ps.Arr.MinSize = min(ps.Arr.MinSize, ops.Arr.MinSize)
			ps.Arr.MaxSize = max(ps.Arr.MaxSize, ops.Arr.MaxSize)
		}
		if ops.NumHist != nil {
			if ps.NumHist == nil {
				ps.NumHist = NewHistogram(d.cfg.HistogramBuckets)
			}
			ps.NumHist.Merge(ops.NumHist)
		}
	}
}

// Scale derives the summary of a sub-dataset selected with the given
// selectivity, without re-analysing documents (§IV-D: when no verification
// backend is configured, "the statistics of each generated sub-dataset are
// then calculated by scaling the statistics of the base dataset"). All
// counts shrink proportionally; value ranges are kept because nothing better
// is known.
func (d *Dataset) Scale(name string, selectivity float64) *Dataset {
	if selectivity < 0 {
		selectivity = 0
	}
	if selectivity > 1 {
		selectivity = 1
	}
	out := NewDataset(name, d.cfg)
	out.DocCount = scaleCount(d.DocCount, selectivity)
	for p, ps := range d.Paths {
		nps := &PathStats{
			Count:     scaleCount(ps.Count, selectivity),
			NullCount: scaleCount(ps.NullCount, selectivity),
		}
		if nps.Count == 0 {
			continue
		}
		if ps.Bool != nil {
			nps.Bool = &BoolStats{
				Count:     scaleCount(ps.Bool.Count, selectivity),
				TrueCount: scaleCount(ps.Bool.TrueCount, selectivity),
			}
		}
		if ps.Int != nil {
			nps.Int = &IntStats{Count: scaleCount(ps.Int.Count, selectivity), Min: ps.Int.Min, Max: ps.Int.Max}
		}
		if ps.Float != nil {
			nps.Float = &FloatStats{Count: scaleCount(ps.Float.Count, selectivity), Min: ps.Float.Min, Max: ps.Float.Max}
		}
		if ps.Str != nil {
			ns := &StringStats{
				Count:          scaleCount(ps.Str.Count, selectivity),
				Prefixes:       make(map[string]int64, len(ps.Str.Prefixes)),
				Values:         make(map[string]int64, len(ps.Str.Values)),
				PrefixOverflow: ps.Str.PrefixOverflow,
				ValueOverflow:  ps.Str.ValueOverflow,
				MinLen:         ps.Str.MinLen,
				MaxLen:         ps.Str.MaxLen,
			}
			for pre, c := range ps.Str.Prefixes {
				if sc := scaleCount(c, selectivity); sc > 0 {
					ns.Prefixes[pre] = sc
				}
			}
			for s, c := range ps.Str.Values {
				if sc := scaleCount(c, selectivity); sc > 0 {
					ns.Values[s] = sc
				}
			}
			nps.Str = ns
		}
		if ps.Obj != nil {
			nps.Obj = &ObjectStats{Count: scaleCount(ps.Obj.Count, selectivity), MinChildren: ps.Obj.MinChildren, MaxChildren: ps.Obj.MaxChildren}
		}
		if ps.Arr != nil {
			nps.Arr = &ArrayStats{Count: scaleCount(ps.Arr.Count, selectivity), MinSize: ps.Arr.MinSize, MaxSize: ps.Arr.MaxSize}
		}
		if ps.NumHist != nil {
			nps.NumHist = ps.NumHist.Scale(selectivity)
		}
		out.Paths[p] = nps
	}
	return out
}

func scaleCount(c int64, f float64) int64 {
	scaled := int64(math.Round(float64(c) * f))
	if scaled == 0 && c > 0 && f > 0 {
		scaled = 1 // keep non-empty statistics alive
	}
	return scaled
}

// SortedPaths returns all paths in lexicographic order, for deterministic
// iteration by the seeded generator.
func (d *Dataset) SortedPaths() []jsonval.Path {
	paths := make([]jsonval.Path, 0, len(d.Paths))
	for p := range d.Paths {
		paths = append(paths, p)
	}
	sort.Slice(paths, func(i, j int) bool { return paths[i] < paths[j] })
	return paths
}

// Validate checks internal consistency of the summary: per-type counts must
// sum to the path count, ranges must be ordered, bool true-counts bounded.
func (d *Dataset) Validate() error {
	for p, ps := range d.Paths {
		var typed int64 = ps.NullCount
		if ps.Bool != nil {
			typed += ps.Bool.Count
			if ps.Bool.TrueCount < 0 || ps.Bool.TrueCount > ps.Bool.Count {
				return fmt.Errorf("jsonstats: path %s: true count %d outside [0,%d]", p, ps.Bool.TrueCount, ps.Bool.Count)
			}
		}
		if ps.Int != nil {
			typed += ps.Int.Count
			if ps.Int.Min > ps.Int.Max {
				return fmt.Errorf("jsonstats: path %s: int min %d > max %d", p, ps.Int.Min, ps.Int.Max)
			}
		}
		if ps.Float != nil {
			typed += ps.Float.Count
			if ps.Float.Min > ps.Float.Max {
				return fmt.Errorf("jsonstats: path %s: float min %g > max %g", p, ps.Float.Min, ps.Float.Max)
			}
		}
		if ps.Str != nil {
			typed += ps.Str.Count
			if ps.Str.MinLen > ps.Str.MaxLen {
				return fmt.Errorf("jsonstats: path %s: string minlen %d > maxlen %d", p, ps.Str.MinLen, ps.Str.MaxLen)
			}
		}
		if ps.Obj != nil {
			typed += ps.Obj.Count
			if ps.Obj.MinChildren > ps.Obj.MaxChildren {
				return fmt.Errorf("jsonstats: path %s: object children %d > %d", p, ps.Obj.MinChildren, ps.Obj.MaxChildren)
			}
		}
		if ps.Arr != nil {
			typed += ps.Arr.Count
			if ps.Arr.MinSize > ps.Arr.MaxSize {
				return fmt.Errorf("jsonstats: path %s: array size %d > %d", p, ps.Arr.MinSize, ps.Arr.MaxSize)
			}
		}
		if typed != ps.Count {
			return fmt.Errorf("jsonstats: path %s: typed counts sum to %d, path count is %d", p, typed, ps.Count)
		}
		if ps.Count > d.DocCount {
			return fmt.Errorf("jsonstats: path %s: count %d exceeds document count %d", p, ps.Count, d.DocCount)
		}
	}
	return nil
}
