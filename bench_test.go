// Benchmarks regenerating every table and figure of the paper (macro
// benches, one per experiment), the ablation studies called out in
// DESIGN.md, and micro benchmarks of the building blocks. Run a single
// experiment with e.g.
//
//	go test -bench 'BenchmarkFig10' -benchtime 1x
package betze_test

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/joda-explore/betze"
	"github.com/joda-explore/betze/internal/analyze"
	"github.com/joda-explore/betze/internal/bsonlite"
	"github.com/joda-explore/betze/internal/harness"
	"github.com/joda-explore/betze/internal/jsonblite"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/lz"
	"github.com/joda-explore/betze/internal/query"
)

// benchEnv is shared across the macro benches: datasets are generated and
// analyzed once. The scale is deliberately small so the full bench suite
// finishes in minutes; raise it via cmd/betze-bench for paper-scale runs.
var (
	envOnce sync.Once
	env     *harness.Env
	envErr  error
)

func benchEnvironment(b *testing.B) *harness.Env {
	b.Helper()
	envOnce.Do(func() {
		env, envErr = harness.NewEnv(harness.Config{
			TwitterDocs:  3000,
			NoBenchDocs:  5000,
			NoBenchSweep: []int{1000, 5000, 20000},
			RedditDocs:   5000,
			Sessions:     5,
			GridSessions: 1,
			Timeout:      2 * time.Minute,
			Seed:         123,
		})
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

// benchExperiment runs one paper experiment per iteration and logs its
// rendered output once.
func benchExperiment(b *testing.B, id string) {
	e := benchEnvironment(b)
	exp, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res, err = exp.Run(context.Background(), e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if testing.Verbose() {
		b.Logf("%s:\n%s", exp.Title, res.Text())
	}
}

// One macro bench per table and figure of the paper.

func BenchmarkPresetsTable1(b *testing.B)           { benchExperiment(b, "table1") }
func BenchmarkFig5UserTrends(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig6SessionDistribution(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7AlphaBetaGrid(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8PredicateMix(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9ThreadScaling(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10DatasetScaling(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkTable2SessionTimes(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkTable3Matrix(b *testing.B)            { benchExperiment(b, "table3") }
func BenchmarkTable4PathDepths(b *testing.B)        { benchExperiment(b, "table4") }
func BenchmarkGenerationCost(b *testing.B)          { benchExperiment(b, "gencost") }
func BenchmarkAttributeSkew(b *testing.B)           { benchExperiment(b, "skew") }

// --- Ablation benches (design choices called out in DESIGN.md) ---

// benchSession builds a reusable session and dataset for engine ablations.
func ablationWorkload(b *testing.B, docs int) ([]jsonval.Value, *betze.Session) {
	b.Helper()
	values := betze.TwitterSource().Generate(docs, 11)
	stats := betze.AnalyzeValues("Twitter", values, betze.AnalyzeOptions{})
	backend := betze.NewJODA(betze.JODAOptions{})
	backend.ImportValues("Twitter", values)
	defer backend.Close()
	session, err := betze.Generate(betze.Options{Preset: betze.Novice, Seed: 123, Backend: backend}, stats)
	if err != nil {
		b.Fatal(err)
	}
	return values, session
}

// BenchmarkAblationResultCache quantifies jodasim's per-predicate result
// cache — the delta-tree mechanism behind Fig. 5's declining query times.
func BenchmarkAblationResultCache(b *testing.B) {
	docs, session := ablationWorkload(b, 4000)
	for _, cached := range []bool{true, false} {
		name := "cached"
		if !cached {
			name = "nocache"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := betze.NewJODA(betze.JODAOptions{DisableCache: !cached})
				eng.ImportValues("Twitter", docs)
				for _, q := range session.Queries {
					if _, err := eng.Execute(context.Background(), q, io.Discard); err != nil {
						b.Fatal(err)
					}
				}
				eng.Close()
			}
		})
	}
}

// BenchmarkAblationAnalyzeParallel compares the sequential and parallel
// analyzer paths.
func BenchmarkAblationAnalyzeParallel(b *testing.B) {
	docs := betze.TwitterSource().Generate(4000, 13)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				analyze.Values("tw", docs, analyze.Options{Workers: workers})
			}
		})
	}
}

// BenchmarkAblationVerification compares generation with backend-verified
// selectivities against statistics-only scaling (the paper's
// "not recommended" mode).
func BenchmarkAblationVerification(b *testing.B) {
	docs := betze.TwitterSource().Generate(4000, 17)
	stats := betze.AnalyzeValues("Twitter", docs, betze.AnalyzeOptions{})
	b.Run("verified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			backend := betze.NewJODA(betze.JODAOptions{})
			backend.ImportValues("Twitter", docs)
			if _, err := betze.Generate(betze.Options{Preset: betze.Novice, Seed: int64(i), Backend: backend}, stats); err != nil {
				b.Fatal(err)
			}
			backend.Close()
		}
	})
	b.Run("stats-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := betze.Generate(betze.Options{Preset: betze.Novice, Seed: int64(i)}, stats); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLazyBSON compares mongosim's lazy path walks against full
// per-document decoding.
func BenchmarkAblationLazyBSON(b *testing.B) {
	docs, session := ablationWorkload(b, 4000)
	for _, full := range []bool{false, true} {
		name := "lazy"
		if full {
			name = "fulldecode"
		}
		b.Run(name, func(b *testing.B) {
			eng := betze.NewMongoDB(betze.MongoOptions{FullDecode: full})
			eng.ImportValues("Twitter", docs)
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range session.Queries {
					if _, err := eng.Execute(context.Background(), q, io.Discard); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationPgLazyLookup compares pgsim's default per-leaf-detoast
// lazy evaluation with a single whole-document decode per row.
func BenchmarkAblationPgLazyLookup(b *testing.B) {
	docs, session := ablationWorkload(b, 4000)
	for _, full := range []bool{false, true} {
		name := "perleaf-detoast"
		if full {
			name = "fulldecode"
		}
		b.Run(name, func(b *testing.B) {
			eng := betze.NewPostgreSQL(betze.PostgresOptions{FullDecode: full})
			if err := eng.ImportValues("Twitter", docs); err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range session.Queries {
					if _, err := eng.Execute(context.Background(), q, io.Discard); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationWeightedPaths compares generation with and without the
// depth-weighted attribute choice of §IV-C.
func BenchmarkAblationWeightedPaths(b *testing.B) {
	docs := betze.TwitterSource().Generate(3000, 19)
	stats := betze.AnalyzeValues("Twitter", docs, betze.AnalyzeOptions{})
	for _, weighted := range []bool{false, true} {
		name := "uniform"
		if weighted {
			name = "weighted"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := betze.Generate(betze.Options{Seed: int64(i), WeightedPaths: weighted}, stats); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro benches of the substrates ---

func twitterSample(n int) ([]jsonval.Value, [][]byte) {
	docs := betze.TwitterSource().Generate(n, 23)
	raw := make([][]byte, n)
	for i, d := range docs {
		raw[i] = jsonval.AppendJSON(nil, d)
	}
	return docs, raw
}

func BenchmarkJSONParse(b *testing.B) {
	docs, raw := twitterSample(500)
	var bytes int64
	for _, r := range raw {
		bytes += int64(len(r))
	}
	_ = docs
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range raw {
			if _, err := jsonval.Parse(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkJSONSerialize(b *testing.B) {
	docs, raw := twitterSample(500)
	var bytes int64
	for _, r := range raw {
		bytes += int64(len(r))
	}
	b.SetBytes(bytes)
	buf := make([]byte, 0, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range docs {
			buf = jsonval.AppendJSON(buf[:0], d)
		}
	}
}

func BenchmarkBSONEncode(b *testing.B) {
	docs, _ := twitterSample(500)
	buf := make([]byte, 0, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range docs {
			buf = bsonlite.Encode(buf[:0], d)
		}
	}
}

func BenchmarkBSONLookupVsDecode(b *testing.B) {
	docs, _ := twitterSample(500)
	encoded := make([][]byte, len(docs))
	for i, d := range docs {
		encoded[i] = bsonlite.Encode(nil, d)
	}
	path := jsonval.ParsePath("/user/verified")
	b.Run("lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, e := range encoded {
				if _, _, err := bsonlite.Lookup(e, path); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, e := range encoded {
				if _, err := bsonlite.Decode(e); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkJSONBEncodeDecode(b *testing.B) {
	docs, _ := twitterSample(500)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				if _, err := jsonblite.Encode(nil, d); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	encoded := make([][]byte, len(docs))
	for i, d := range docs {
		data, err := jsonblite.Encode(nil, d)
		if err != nil {
			b.Fatal(err)
		}
		encoded[i] = data
	}
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, e := range encoded {
				if _, err := jsonblite.Decode(e); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkPredicateEval(b *testing.B) {
	docs, _ := twitterSample(2000)
	pred := query.And{
		Left:  query.Exists{Path: "/user"},
		Right: query.FloatCmp{Path: "/user/followers_count", Op: query.Ge, Value: 1000},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range docs {
			pred.Eval(d)
		}
	}
}

func BenchmarkGenerateSession(b *testing.B) {
	docs := betze.TwitterSource().Generate(3000, 29)
	stats := betze.AnalyzeValues("Twitter", docs, betze.AnalyzeOptions{})
	backend := betze.NewJODA(betze.JODAOptions{})
	backend.ImportValues("Twitter", docs)
	defer backend.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := betze.Generate(betze.Options{Preset: betze.Intermediate, Seed: int64(i), Backend: backend}, stats); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTransforms measures the cost of the transformation stage
// (the §VII extension) relative to plain materialised sessions.
func BenchmarkAblationTransforms(b *testing.B) {
	docs := betze.TwitterSource().Generate(3000, 37)
	stats := betze.AnalyzeValues("Twitter", docs, betze.AnalyzeOptions{})
	for _, transforms := range []bool{false, true} {
		name := "plain"
		if transforms {
			name = "transforms"
		}
		session, err := betze.Generate(betze.Options{
			Preset: betze.Intermediate, Seed: 3,
			Materialize: true, Transforms: transforms, TransformFraction: 1,
		}, stats)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := betze.NewJODA(betze.JODAOptions{})
				eng.ImportValues("Twitter", docs)
				for _, q := range session.Queries {
					if _, err := eng.Execute(context.Background(), q, io.Discard); err != nil {
						b.Fatal(err)
					}
				}
				eng.Close()
			}
		})
	}
}

// BenchmarkLZCodec measures the storage codec the engines share (pglz/snappy
// stand-in).
func BenchmarkLZCodec(b *testing.B) {
	_, raw := twitterSample(500)
	var flat []byte
	for _, r := range raw {
		flat = append(flat, r...)
		flat = append(flat, '\n')
	}
	compressed := lz.Compress(nil, flat)
	b.Logf("ratio: %d -> %d bytes (%.1f%%)", len(flat), len(compressed), 100*float64(len(compressed))/float64(len(flat)))
	b.Run("compress", func(b *testing.B) {
		b.SetBytes(int64(len(flat)))
		buf := make([]byte, 0, len(flat))
		for i := 0; i < b.N; i++ {
			buf = lz.Compress(buf[:0], flat)
		}
	})
	b.Run("decompress", func(b *testing.B) {
		b.SetBytes(int64(len(flat)))
		buf := make([]byte, 0, len(flat))
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = lz.Decompress(buf[:0], compressed)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
