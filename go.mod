module github.com/joda-explore/betze

go 1.22
